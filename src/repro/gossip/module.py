"""The gossip protocol — Algorithm 1.

A server running gossip maintains four structures (§3): the block DAG
``G`` and request buffer ``rqsts`` shared with the shim, its in-progress
block ``B`` (a :class:`~repro.dag.block.BlockBuilder`), and the buffer
``blks`` of received-but-not-yet-valid blocks.  The handlers here are
the pseudocode's ``when`` clauses, one method each:

* lines 4–5   → :meth:`Gossip.on_receive` (block case) buffers new blocks;
* lines 6–9   → :meth:`Gossip._drain` validates buffered blocks, inserts
  them into ``G`` and appends their references to ``B``;
* lines 10–11 → :meth:`Gossip._request_missing` sends ``FWD`` requests
  for unknown predecessors to the buffered block's builder;
* lines 12–13 → :meth:`Gossip.on_receive` (FWD case) answers with the
  full block;
* lines 14–18 → :meth:`Gossip.disseminate` seals the current block,
  inserts it, sends it to everyone and rolls over.

The module never interprets anything — the strict separation the paper
stresses ("independently, indicated by the dotted line", Figure 1) —
but it exposes an ``on_insert`` callback so the shim can trigger
incremental interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence  # noqa: F401 - Sequence used in signatures

from repro.crypto.keys import KeyRing
from repro.dag.block import Block, BlockBuilder
from repro.dag.blockdag import BlockDag, Validator, Validity
from repro.gossip.forwarding import ForwardingState
from repro.net.message import BlockEnvelope, Envelope, FwdRequestEnvelope
from repro.net.transport import Transport
from repro.requests import RequestBuffer
from repro.types import BlockRef, ServerId


@dataclass(frozen=True)
class GossipConfig:
    """Tunables of one gossip instance."""

    #: Virtual-time gap between FWD retries for the same reference (Δ_B').
    fwd_retry_interval: float = 3.0
    #: Max FWD attempts per reference (``None`` = unbounded).
    fwd_max_attempts: int | None = None
    #: Max requests stamped into one block on disseminate.
    max_requests_per_block: int = 256


@dataclass
class GossipMetrics:
    """Operational counters of one gossip instance."""

    blocks_received: int = 0
    duplicate_blocks: int = 0
    invalid_blocks: int = 0
    blocks_inserted: int = 0
    blocks_disseminated: int = 0
    fwd_requests_sent: int = 0
    fwd_requests_answered: int = 0
    fwd_requests_unanswerable: int = 0
    buffered_high_water: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class Gossip:
    """One server's gossip module (Algorithm 1).

    Parameters
    ----------
    server:
        This server's identity (the ``s`` of ``gossip(s, G, rqsts)``).
    keyring:
        Key material for signing own blocks and verifying others'.
    transport:
        Network facade (simulator- or kvstore-backed).
    rqsts:
        Request buffer shared with the shim (labels + requests to stamp
        into the next block).
    dag:
        The block DAG ``G`` shared with the interpreter; a fresh one is
        created when omitted.
    on_insert:
        Callback fired after every successful ``G.insert(B)``.
    """

    def __init__(
        self,
        server: ServerId,
        keyring: KeyRing,
        transport: Transport,
        rqsts: RequestBuffer,
        dag: BlockDag | None = None,
        config: GossipConfig | None = None,
        on_insert: Callable[[Block], None] | None = None,
    ) -> None:
        self.server = server
        self.keyring = keyring
        self.transport = transport
        self.rqsts = rqsts
        self.dag = dag if dag is not None else BlockDag()
        self.config = config if config is not None else GossipConfig()
        self.on_insert = on_insert
        self.builder = BlockBuilder(server)
        self.blks: dict[BlockRef, Block] = {}
        self.metrics = GossipMetrics()
        self.validator = Validator(verify=keyring.verify, resolve=self._resolve)
        self.forwarding = ForwardingState(
            retry_interval=self.config.fwd_retry_interval,
            max_attempts=self.config.fwd_max_attempts,
        )

    def _resolve(self, ref: BlockRef) -> Block | None:
        """Blocks are visible to validation from ``G`` or the buffer."""
        block = self.dag.get(ref)
        if block is not None:
            return block
        return self.blks.get(ref)

    # -- receiving (lines 4–5, 12–13) ------------------------------------------

    def on_receive(self, src: ServerId, envelope: Envelope) -> None:
        """Network ingress: blocks and FWD requests."""
        if isinstance(envelope, BlockEnvelope):
            self._on_block(envelope.block)
        elif isinstance(envelope, FwdRequestEnvelope):
            self._on_fwd_request(src, envelope.ref)
        else:
            raise TypeError(f"gossip received unknown envelope {envelope!r}")

    def _on_block(self, block: Block) -> None:
        self.metrics.blocks_received += 1
        if block.ref in self.dag or block.ref in self.blks:
            self.metrics.duplicate_blocks += 1
            return
        if not self.keyring.verify(block.n, block.signing_payload(), block.sigma):
            # Ingress signature check: a badly signed copy is treated as
            # never received, so it can neither occupy the buffer slot of
            # the honest copy (they share a ref) nor waste FWD traffic.
            self.metrics.invalid_blocks += 1
            return
        self.blks[block.ref] = block  # lines 4–5
        self.forwarding.satisfied(block.ref)
        self.metrics.buffered_high_water = max(
            self.metrics.buffered_high_water, len(self.blks)
        )
        self._drain()
        self._request_missing()

    def _on_fwd_request(self, src: ServerId, ref: BlockRef) -> None:
        # Lines 12–13: answer only from G.  (A correct server is only
        # ever asked for predecessors of blocks it disseminated, which
        # are in its G; anything else can be safely ignored.)  Blocks
        # whose payload was pruned below the stable frontier cannot be
        # served — the stub would not re-hash to the requested ref; a
        # peer that far behind needs a checkpoint, not FWD.
        block = self.dag.get(ref)
        if block is not None and not self.dag.payload_pruned(ref):
            self.metrics.fwd_requests_answered += 1
            self.transport.send(src, BlockEnvelope(block))
        else:
            self.metrics.fwd_requests_unanswerable += 1

    # -- validation & insertion (lines 6–9) -------------------------------------

    def _drain(self) -> None:
        """Move every buffered block that became valid into ``G``.

        A single arrival can unblock a chain of buffered descendants,
        hence the fixpoint loop.  Permanently invalid blocks are
        discarded."""
        progress = True
        while progress:
            progress = False
            for ref in list(self.blks):
                block = self.blks.get(ref)
                if block is None:
                    continue
                verdict = self.validator.validity(block)
                if verdict is Validity.INVALID:
                    del self.blks[ref]
                    self.metrics.invalid_blocks += 1
                    progress = True
                elif verdict is Validity.VALID and all(
                    p in self.dag.refs for p in block.preds
                ):
                    self._insert(block)  # line 7
                    del self.blks[ref]  # line 9
                    progress = True

    def _insert(self, block: Block) -> None:
        inserted = self.dag.insert(block)
        if not inserted:
            return
        self.metrics.blocks_inserted += 1
        if block.n != self.server:
            # Line 8: reference every newly validated foreign block in
            # our own next block; own blocks already chain via parent.
            self.builder.add_pred(block.ref)
        if self.on_insert is not None:
            self.on_insert(block)

    # -- forwarding (lines 10–11) -------------------------------------------------

    def _request_missing(self) -> None:
        """Ask builders of buffered blocks for predecessors we lack."""
        now = self.transport.now
        for block in list(self.blks.values()):
            for pred_ref in block.preds:
                if pred_ref in self.dag.refs or pred_ref in self.blks:
                    continue
                if self.forwarding.want(pred_ref, block.n, now):
                    self._send_fwd(pred_ref, block.n)

    def _send_fwd(self, ref: BlockRef, target: ServerId) -> None:
        self.metrics.fwd_requests_sent += 1
        self.transport.send(target, FwdRequestEnvelope(ref))
        self.transport.schedule(
            self.config.fwd_retry_interval, self._retry_forwarding
        )

    def _retry_forwarding(self) -> None:
        """Timer callback re-issuing FWDs whose pacing interval expired."""
        now = self.transport.now
        for ref, target in self.forwarding.due(now):
            if ref in self.dag.refs or ref in self.blks:
                self.forwarding.satisfied(ref)
                continue
            if self.forwarding.want(ref, target, now):
                self._send_fwd(ref, target)

    # -- dissemination (lines 14–18) -----------------------------------------------

    def disseminate(self) -> Block:
        """Seal and send the current block to everyone; start the next.

        Uses the transport's broadcast primitive (line 17), which the
        KV-store substrate implements as one store write plus one
        publication — the fan-out happens in the broker, not here.
        Returns the sealed block (tests and adversaries use it)."""
        block = self._seal_and_insert()
        self.transport.broadcast(self.keyring.servers, BlockEnvelope(block))
        return block

    def disseminate_to(self, recipients: Sequence[ServerId]) -> Block:
        """Seal, insert and send the current block to ``recipients`` only.

        Correct servers always use :meth:`disseminate` (line 17 sends to
        every server); this hook exists for withholding/equivocating
        adversaries, which seal valid blocks but control who sees them.
        """
        block = self._seal_and_insert()
        for recipient in recipients:
            self.transport.send(recipient, BlockEnvelope(block))
        return block

    def _seal_and_insert(self) -> Block:
        """Lines 14–16: stamp requests, sign, insert into ``G``."""
        requests = self.rqsts.get(self.config.max_requests_per_block)
        block = self.builder.seal(
            requests,
            sign=lambda payload: self.keyring.sign(self.server, payload),
        )
        self._insert(block)
        self.metrics.blocks_disseminated += 1
        return block

    # -- introspection ------------------------------------------------------------

    def blocks_behind(self) -> int:
        """Height gap between our chain tip and the most advanced peer's
        (input to :class:`~repro.gossip.policy.WhenFallingBehind`)."""
        own_tip = self.dag.tip(self.server)
        own_height = own_tip.k if own_tip is not None else -1
        best = own_height
        for server in self.keyring.servers:
            tip = self.dag.tip(server)
            if tip is not None:
                best = max(best, tip.k)
        return best - own_height
