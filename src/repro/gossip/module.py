"""The gossip protocol — Algorithm 1.

A server running gossip maintains four structures (§3): the block DAG
``G`` and request buffer ``rqsts`` shared with the shim, its in-progress
block ``B`` (a :class:`~repro.dag.block.BlockBuilder`), and the buffer
``blks`` of received-but-not-yet-valid blocks.  The handlers here are
the pseudocode's ``when`` clauses, one method each:

* lines 4–5   → :meth:`Gossip.on_receive` (block case) buffers new blocks;
* lines 6–9   → :meth:`Gossip._try_admit` validates a buffered block and
  inserts it into ``G``, appending its reference to ``B``; blocks that
  cannot be admitted yet are indexed by the predecessor they are
  missing, and every insertion drains exactly the chains it unblocked
  (no fixpoint rescan of the whole buffer per arrival);
* lines 10–11 → :meth:`Gossip._request_missing_for` sends ``FWD``
  requests for a newly buffered block's unknown predecessors to its
  builder (retries ride the pacing timer);
* lines 12–13 → :meth:`Gossip.on_receive` (FWD case) answers with the
  full block;
* lines 14–18 → :meth:`Gossip.disseminate` seals the current block,
  inserts it, sends it to everyone and rolls over.

Coordinated-GC validity extension (PR 4): when wired to a
:class:`~repro.horizon.tracker.HorizonTracker`, an *arriving* block
whose chain position is already below the agreed horizon is condemned
with cause — its inputs are gone everywhere by ``n - f`` agreement, so
admitting it could only stall.  The cached ``INVALID`` verdict makes
buffered descendants invalid through the ordinary Definition 3.3 (iii)
cascade.  Only byzantine blocks (withheld fork siblings) can arrive
that late: any honest block travels ahead of the quorum of claims that
advances the horizon over it (see :mod:`repro.horizon.tracker`).

The module never interprets anything — the strict separation the paper
stresses ("independently, indicated by the dotted line", Figure 1) —
but it exposes an ``on_insert`` callback so the shim can trigger
incremental interpretation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence  # noqa: F401 - Sequence used in signatures

from repro.crypto.keys import KeyRing

# The sanctioned wall-clock conduit (lint: no-wall-clock): sig-verify
# timings feed HotPathTimers only, never trace identity.
from repro.obs.timers import perf_counter
from repro.obs.trace import NULL_RECORDER
from repro.dag.block import Block, BlockBuilder
from repro.dag.blockdag import BlockDag, Validator, Validity
from repro.gossip.forwarding import ForwardingState
from repro.net.message import BlockEnvelope, Envelope, FwdRequestEnvelope
from repro.net.transport import Transport
from repro.requests import RequestBuffer
from repro.types import BlockRef, ServerId


@dataclass(frozen=True)
class GossipConfig:
    """Tunables of one gossip instance."""

    #: Virtual-time gap between FWD retries for the same reference (Δ_B').
    fwd_retry_interval: float = 3.0
    #: Max FWD attempts per reference (``None`` = unbounded).
    fwd_max_attempts: int | None = None
    #: Max requests stamped into one block on disseminate.
    max_requests_per_block: int = 256


@dataclass
class GossipMetrics:
    """Operational counters of one gossip instance."""

    blocks_received: int = 0
    duplicate_blocks: int = 0
    invalid_blocks: int = 0
    #: Arriving blocks rejected because their chain position was already
    #: below the agreed GC horizon (coordinated-GC validity rule).
    condemned_below_horizon: int = 0
    blocks_inserted: int = 0
    blocks_disseminated: int = 0
    fwd_requests_sent: int = 0
    fwd_requests_answered: int = 0
    fwd_requests_unanswerable: int = 0
    buffered_high_water: int = 0
    extra: dict[str, int] = field(default_factory=dict)


class Gossip:
    """One server's gossip module (Algorithm 1).

    Parameters
    ----------
    server:
        This server's identity (the ``s`` of ``gossip(s, G, rqsts)``).
    keyring:
        Key material for signing own blocks and verifying others'.
    transport:
        Network facade (simulator- or kvstore-backed).
    rqsts:
        Request buffer shared with the shim (labels + requests to stamp
        into the next block).
    dag:
        The block DAG ``G`` shared with the interpreter; a fresh one is
        created when omitted.
    on_insert:
        Callback fired after every successful ``G.insert(B)``.
    on_batch_end:
        Callback fired once per external event (a network delivery or a
        dissemination) *after* its whole admission cascade settled, and
        only if the cascade inserted at least one block.  The shim
        hangs WAL chain-frame flushing and batched interpretation off
        this hook: a catch-up drain admitting a whole buffered chain
        becomes one WAL record and one interpreter pass instead of a
        per-block round trip.
    horizon:
        Optional agreed-horizon view (duck-typed: anything with a
        ``condemns(block)`` method, normally a
        :class:`~repro.horizon.tracker.HorizonTracker`).  When given,
        arriving blocks below the agreed horizon are condemned with
        cause instead of buffered.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder` — every seal,
        admission, condemnation and buffering emits a typed event
        stamped with virtual time.  Defaults to the no-op recorder.
    timers:
        Optional :class:`~repro.obs.timers.HotPathTimers` — wall-clock
        histograms (signature verification here), never visible in the
        trace, so timing cannot perturb determinism.
    """

    def __init__(
        self,
        server: ServerId,
        keyring: KeyRing,
        transport: Transport,
        rqsts: RequestBuffer,
        dag: BlockDag | None = None,
        config: GossipConfig | None = None,
        on_insert: Callable[[Block], None] | None = None,
        on_batch_end: Callable[[], None] | None = None,
        horizon: object | None = None,
        tracer: object | None = None,
        timers: object | None = None,
    ) -> None:
        self.server = server
        self.keyring = keyring
        self.transport = transport
        self.rqsts = rqsts
        self.dag = dag if dag is not None else BlockDag()
        self.config = config if config is not None else GossipConfig()
        self.on_insert = on_insert
        self.on_batch_end = on_batch_end
        self.horizon = horizon
        #: Flight recorder (``repro.obs``); the shared no-op recorder
        #: when tracing is off, so emission sites cost one attribute
        #: check.  ``timers`` holds wall-clock hot-path histograms and
        #: stays strictly outside trace identity.
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.timers = timers
        #: Inserts since the last batch-end notification.
        self._batch_inserts = 0
        self.builder = BlockBuilder(server)
        self.blks: dict[BlockRef, Block] = {}
        #: Buffered blocks indexed by the predecessor they wait for:
        #: ``missing ref -> refs of buffered blocks listing it``.  Lists
        #: (not sets) keep drain order deterministic across runs; dead
        #: entries are dropped lazily.
        self._waiting: dict[BlockRef, list[BlockRef]] = {}
        self._unblocked: deque[BlockRef] = deque()
        self._draining = False
        self.metrics = GossipMetrics()
        self.validator = Validator(verify=keyring.verify, resolve=self._resolve)
        self.forwarding = ForwardingState(
            retry_interval=self.config.fwd_retry_interval,
            max_attempts=self.config.fwd_max_attempts,
        )
        # Any insertion — own sealed blocks included — may unblock
        # buffered descendants; the listener drains exactly those.
        self.dag.add_insert_listener(self._on_dag_insert)

    def _resolve(self, ref: BlockRef) -> Block | None:
        """Blocks are visible to validation from ``G`` or the buffer."""
        block = self.dag.get(ref)
        if block is not None:
            return block
        return self.blks.get(ref)

    # -- receiving (lines 4–5, 12–13) ------------------------------------------

    def on_receive(self, src: ServerId, envelope: Envelope) -> None:
        """Network ingress: blocks and FWD requests."""
        if isinstance(envelope, BlockEnvelope):
            self._on_block(envelope.block)
            self._end_batch()
        elif isinstance(envelope, FwdRequestEnvelope):
            self._on_fwd_request(src, envelope.ref)
        else:
            raise TypeError(f"gossip received unknown envelope {envelope!r}")

    def _end_batch(self) -> None:
        """Fire ``on_batch_end`` if the event just handled inserted
        anything (one external event = one batch, however long the
        buffered-chain cascade it unblocked)."""
        if self._batch_inserts:
            self._batch_inserts = 0
            if self.on_batch_end is not None:
                self.on_batch_end()

    def _on_block(self, block: Block) -> None:
        self.metrics.blocks_received += 1
        if block.ref in self.dag or block.ref in self.blks:
            self.metrics.duplicate_blocks += 1
            return
        timers = self.timers
        if timers is not None:
            started = perf_counter()
            verified = self.keyring.verify(block.n, block.signing_payload(), block.sigma)
            timers.observe("sig-verify", perf_counter() - started)  # type: ignore[attr-defined]
        else:
            verified = self.keyring.verify(block.n, block.signing_payload(), block.sigma)
        if not verified:
            # Ingress signature check: a badly signed copy is treated as
            # never received, so it can neither occupy the buffer slot of
            # the honest copy (they share a ref) nor waste FWD traffic.
            self.metrics.invalid_blocks += 1
            if self.tracer.enabled:
                self.tracer.emit("condemned", block=block.ref, cause="bad-signature")  # type: ignore[attr-defined]
            return
        if self.horizon is not None and self.horizon.condemns(block):  # type: ignore[attr-defined]
            # Coordinated-GC validity rule: the block's position is
            # below the agreed horizon — its inputs were retired by
            # n - f agreement, so it can never be interpreted here.
            # Condemn with cause (buffered descendants are discarded by
            # the cached-INVALID cascade) instead of stalling them.
            self.metrics.condemned_below_horizon += 1
            if self.tracer.enabled:
                self.tracer.emit(  # type: ignore[attr-defined]
                    "condemned", block=block.ref, cause="below-horizon-position"
                )
            self.validator.condemn(block.ref)
            self._queue_unblocked(block.ref)
            return
        self.blks[block.ref] = block  # lines 4–5
        self.forwarding.satisfied(block.ref)
        self.metrics.buffered_high_water = max(
            self.metrics.buffered_high_water, len(self.blks)
        )
        self._try_admit(block)  # cascades through _on_dag_insert
        if block.ref in self.blks:
            if self.tracer.enabled:
                missing = [p for p in dict.fromkeys(block.preds) if p not in self.dag]
                self.tracer.emit(  # type: ignore[attr-defined]
                    "buffered-missing-pred",
                    block=block.ref,
                    missing=len(missing),
                    first_missing=str(missing[0]) if missing else None,
                )
            # Still buffered: chase only *this* block's missing preds —
            # every other buffered block already requested its own on
            # arrival, and _retry_forwarding re-issues on the timer.
            # (A full-index sweep here would make an out-of-order flood
            # quadratic again.)
            self._request_missing_for(block)

    def _on_fwd_request(self, src: ServerId, ref: BlockRef) -> None:
        # Lines 12–13: answer only from G.  (A correct server is only
        # ever asked for predecessors of blocks it disseminated, which
        # are in its G; anything else can be safely ignored.)  Blocks
        # whose payload was pruned below the stable frontier cannot be
        # served — the stub would not re-hash to the requested ref; a
        # peer that far behind needs a checkpoint, not FWD.
        block = self.dag.get(ref)
        if block is not None and not self.dag.payload_pruned(ref):
            self.metrics.fwd_requests_answered += 1
            self.transport.send(src, BlockEnvelope(block))
        else:
            self.metrics.fwd_requests_unanswerable += 1

    # -- validation & insertion (lines 6–9) -------------------------------------

    def _try_admit(self, block: Block) -> bool:
        """Try to move one buffered block into ``G`` (lines 6–9).

        Returns ``True`` when the block left the buffer — inserted, or
        discarded as permanently invalid.  Otherwise the block is
        registered in the missing-predecessor index under every direct
        predecessor not yet in ``G`` and will be retried exactly when
        one of them is inserted (or discarded, which condemns it too).
        """
        verdict = self.validator.validity(block)
        if verdict is Validity.INVALID:
            del self.blks[block.ref]
            self.metrics.invalid_blocks += 1
            if self.tracer.enabled:
                self.tracer.emit("condemned", block=block.ref, cause="invalid")  # type: ignore[attr-defined]
            # Waiters on this ref must be re-checked: with the INVALID
            # verdict now cached they are invalid themselves (Def. 3.3
            # (iii)) and get discarded by the same cascade.
            self._queue_unblocked(block.ref)
            return True
        missing = [p for p in dict.fromkeys(block.preds) if p not in self.dag]
        if verdict is Validity.VALID and not missing:
            if self.horizon is not None and any(
                self.dag.payload_pruned(p) for p in dict.fromkeys(block.preds)
            ):
                # Reference-below-horizon validity, second half: the
                # block's position is fresh but it references a block
                # whose data the agreed horizon already retired
                # (payload destroyed, checkpoint entry skeletonized).
                # It could never be interpreted here — only a byzantine
                # re-reference reaches this deep (destruction requires
                # every server's reference to exist already).  Condemn
                # with cause instead of admitting a permanent stall.
                del self.blks[block.ref]
                self.metrics.condemned_below_horizon += 1
                if self.tracer.enabled:
                    self.tracer.emit(  # type: ignore[attr-defined]
                        "condemned", block=block.ref, cause="below-horizon-reference"
                    )
                self.validator.condemn(block.ref)
                self._queue_unblocked(block.ref)
                return True
            self._insert(block)  # line 7 (listener drains waiters)
            del self.blks[block.ref]  # line 9
            return True
        for ref in missing:
            bucket = self._waiting.setdefault(ref, [])
            if block.ref not in bucket:
                bucket.append(block.ref)
        return False

    def _on_dag_insert(self, block: Block) -> None:
        """DAG insert listener: drain the chains this insertion unblocked."""
        self._queue_unblocked(block.ref)

    def _queue_unblocked(self, ref: BlockRef) -> None:
        """Re-admit the buffered blocks waiting on ``ref``.

        Iterative worklist with a re-entrancy guard: admissions insert
        into the DAG, which fires :meth:`_on_dag_insert` again — nested
        calls only enqueue, so arbitrarily long buffered chains drain
        without recursion.  Total work is O(blocks drained), not
        O(buffer size) per arrival."""
        self._unblocked.append(ref)
        self._pump_unblocked()

    def _pump_unblocked(self) -> None:
        if self._draining:
            return
        self._draining = True
        try:
            while self._unblocked:
                settled = self._unblocked.popleft()
                for waiter_ref in self._waiting.pop(settled, ()):
                    waiter = self.blks.get(waiter_ref)
                    if waiter is not None:
                        self._try_admit(waiter)
        finally:
            self._draining = False

    def _insert(self, block: Block) -> None:
        # The guard spans the whole insertion — the DAG listener fires
        # mid-``dag.insert`` and must only *enqueue* unblocked waiters,
        # never admit them before this block finished its own
        # ``on_insert`` (the shim's WAL append: admitting a descendant
        # first would write the WAL out of topological order and break
        # recovery replay).  The pump below drains in FIFO order, so
        # chains land in the log predecessors-first.
        was_draining = self._draining
        self._draining = True
        try:
            inserted = self.dag.insert(block)
            if not inserted:
                return
            self.metrics.blocks_inserted += 1
            self._batch_inserts += 1
            if self.tracer.enabled:
                self.tracer.emit(  # type: ignore[attr-defined]
                    "block-validated", block=block.ref, n=str(block.n), k=block.k
                )
            if block.n != self.server:
                # Line 8: reference every newly validated foreign block in
                # our own next block; own blocks already chain via parent.
                self.builder.add_pred(block.ref)
            if self.on_insert is not None:
                self.on_insert(block)
        finally:
            self._draining = was_draining
        self._pump_unblocked()

    # -- forwarding (lines 10–11) -------------------------------------------------

    def _request_missing_for(self, block: Block) -> None:
        """FWD-chase one buffered block's unresolved predecessors
        (lines 10–11): O(|preds|), run once at arrival.  Re-issues are
        the retry timer's job (:meth:`_retry_forwarding`), so no caller
        ever sweeps the whole missing-predecessor index."""
        now = self.transport.now
        for pred_ref in dict.fromkeys(block.preds):
            if pred_ref in self.dag or pred_ref in self.blks:
                continue
            if self.forwarding.want(pred_ref, block.n, now):
                self._send_fwd(pred_ref, block.n)

    def _send_fwd(self, ref: BlockRef, target: ServerId) -> None:
        self.metrics.fwd_requests_sent += 1
        self.transport.send(target, FwdRequestEnvelope(ref))
        self.transport.schedule(
            self.config.fwd_retry_interval, self._retry_forwarding
        )

    def _retry_forwarding(self) -> None:
        """Timer callback re-issuing FWDs whose pacing interval expired.

        Also the index janitor: a chased ref whose waiters have all
        left the buffer (condemned by the INVALID cascade, typically)
        is dropped from both the index and the forwarding state instead
        of being re-requested forever for nobody."""
        now = self.transport.now
        for ref, target in self.forwarding.due(now):
            if ref in self.dag or ref in self.blks:
                self.forwarding.satisfied(ref)
                continue
            waiters = [w for w in self._waiting.get(ref, ()) if w in self.blks]
            if not waiters:
                self._waiting.pop(ref, None)
                self.forwarding.satisfied(ref)
                continue
            self._waiting[ref] = waiters
            if self.forwarding.want(ref, target, now):
                self._send_fwd(ref, target)

    # -- dissemination (lines 14–18) -----------------------------------------------

    def disseminate(self) -> Block:
        """Seal and send the current block to everyone; start the next.

        Uses the transport's broadcast primitive (line 17), which the
        KV-store substrate implements as one store write plus one
        publication — the fan-out happens in the broker, not here.
        Returns the sealed block (tests and adversaries use it)."""
        block = self._seal_and_insert()
        self.transport.broadcast(self.keyring.servers, BlockEnvelope(block))
        return block

    def disseminate_to(self, recipients: Sequence[ServerId]) -> Block:
        """Seal, insert and send the current block to ``recipients`` only.

        Correct servers always use :meth:`disseminate` (line 17 sends to
        every server); this hook exists for withholding/equivocating
        adversaries, which seal valid blocks but control who sees them.
        """
        block = self._seal_and_insert()
        for recipient in recipients:
            self.transport.send(recipient, BlockEnvelope(block))
        return block

    def _seal_and_insert(self) -> Block:
        """Lines 14–16: stamp requests, sign, insert into ``G``."""
        requests = self.rqsts.get(self.config.max_requests_per_block)
        block = self.builder.seal(
            requests,
            sign=lambda payload: self.keyring.sign(self.server, payload),
        )
        if self.tracer.enabled:
            self.tracer.emit(  # type: ignore[attr-defined]
                "block-sealed",
                block=block.ref,
                n=str(block.n),
                k=block.k,
                requests=len(requests),
            )
        self._insert(block)
        self.metrics.blocks_disseminated += 1
        self._end_batch()
        return block

    # -- introspection ------------------------------------------------------------

    def buffered_references(self) -> set[BlockRef]:
        """Every predecessor reference named by a currently buffered
        block — data the GC layer must not destroy, since admitting the
        buffered block will need it (input to
        :func:`repro.storage.gc.prune`'s protection set)."""
        refs: set[BlockRef] = set()
        for block in self.blks.values():
            refs.update(block.preds)
        return refs

    def missing_predecessors(self) -> int:
        """Distinct references currently known-missing (buffered blocks
        are waiting on them).  Steady-state gossip keeps this near zero;
        a large value means the server is visibly catching up — the
        shim defers data destruction while that holds."""
        return len(self._waiting)

    def blocks_behind(self) -> int:
        """Height gap between our chain tip and the most advanced peer's
        (input to :class:`~repro.gossip.policy.WhenFallingBehind`)."""
        own_tip = self.dag.tip(self.server)
        own_height = own_tip.k if own_tip is not None else -1
        best = own_height
        for server in self.keyring.servers:
            tip = self.dag.tip(server)
            if tip is not None:
                best = max(best, tip.k)
        return best - own_height
