"""Deterministic BFT protocols — the black boxes ``P`` the framework embeds.

Every protocol implements the interface of
:class:`repro.protocols.base.ProcessInstance`: it consumes requests and
messages, emits messages through a deterministic context, and raises
indications.  The embedding (``shim``/``interpret``) treats them as
opaque, exactly as the paper requires.

Provided protocols:

* :mod:`repro.protocols.brb` — byzantine reliable broadcast
  (authenticated double-echo, the paper's Algorithm 4).
* :mod:`repro.protocols.bcb` — byzantine consistent broadcast
  (authenticated echo broadcast, Cachin et al. Module 3.10).
* :mod:`repro.protocols.pbft` — leader-based total-order consensus in
  the style of simplified PBFT / Blockmania, with explicit TICK
  requests standing in for timers (keeping ``P`` deterministic).
* :mod:`repro.protocols.phaseking` — phase-king consensus (``n > 4f``),
  a classic deterministic synchronous protocol driven by explicit
  round-advance requests.
* :mod:`repro.protocols.counter` — a trivial instrumentation protocol
  used by unit tests.
"""

from repro.protocols.base import (
    Context,
    Message,
    Payload,
    ProcessInstance,
    ProtocolSpec,
    StepResult,
)
from repro.protocols.bcb import BcbDeliver, ConsistentBroadcast, bcb_protocol
from repro.protocols.brb import Broadcast, Deliver, ReliableBroadcast, brb_protocol
from repro.protocols.counter import CounterProtocol, counter_protocol
from repro.protocols.pbft import Decide, Pbft, Propose, Tick, pbft_protocol
from repro.protocols.phaseking import PhaseKing, PkDecide, PkPropose, phase_king_protocol

__all__ = [
    "BcbDeliver",
    "Broadcast",
    "ConsistentBroadcast",
    "Context",
    "CounterProtocol",
    "Decide",
    "Deliver",
    "Message",
    "Payload",
    "Pbft",
    "PhaseKing",
    "PkDecide",
    "PkPropose",
    "ProcessInstance",
    "Propose",
    "ProtocolSpec",
    "ReliableBroadcast",
    "StepResult",
    "Tick",
    "bcb_protocol",
    "brb_protocol",
    "counter_protocol",
    "pbft_protocol",
    "phase_king_protocol",
]
