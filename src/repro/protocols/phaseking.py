"""Phase-king consensus — a classic deterministic BFT consensus.

Berman–Garay phase-king: ``n > 4f`` servers decide a common value in
``f + 1`` phases of two rounds each, with no randomness — a canonical
member of the deterministic protocol class the paper's embedding
targets (§2 explicitly rules out coin flips; phase king needs none).

Phase ``p`` (1-indexed):

* **round 1** — everyone broadcasts its current value; each process
  computes the majority value and its multiplicity;
* **round 2** — the phase's *king* (server ``p``) broadcasts its
  majority value; each process keeps its own majority if the
  multiplicity exceeded ``n/2 + f``, otherwise adopts the king's value.

After phase ``f + 1`` at least one phase had a correct king, which
forces agreement; validity holds because a unanimous start never loses
its majority.

**Round discipline without clocks.**  Phase king is a synchronous
protocol.  To keep the process deterministic, round advancement is an
explicit :class:`PkAdvance` *request* injected by the environment —
the synchrony assumption becomes "the environment advances rounds only
after all correct round-``r`` messages are in", mirroring how the
paper folds network assumptions into the protocol's own requirements
(§2).  The embedding then satisfies that assumption by advancing rounds
a safe number of gossip layers apart.

Interface::

    Rqsts = { pk-propose(v) } ∪ { pk-advance }
    Inds  = { pk-decide(v) }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dag.codec import encoding_key
from repro.protocols.base import Context, Message, Payload, ProcessInstance, ProtocolSpec
from repro.types import Indication, Request, ServerId

Value = Any


@dataclass(frozen=True, slots=True)
class PkPropose(Request):
    """Request: start consensus with initial ``value``."""

    value: Value


@dataclass(frozen=True, slots=True)
class PkAdvance(Request):
    """Request: the current round is over; process it and move on."""


@dataclass(frozen=True, slots=True)
class PkDecide(Indication):
    """Indication: decided ``value`` after ``f + 1`` phases."""

    value: Value


@dataclass(frozen=True, slots=True)
class PkValue(Payload):
    """A value broadcast in (``phase``, ``round``)."""

    phase: int
    round: int
    value: Value


class PhaseKing(ProcessInstance):
    """One process of phase-king consensus (``n > 4f``).

    **COW audit note.**  The only mutable container is ``_received``
    (votes per ``(phase, round)``), and its single mutation site in
    :meth:`on_message` goes through ``_writable_entry`` so a fork
    privatizes just the touched round's slot.  Everything else —
    ``value``, ``phase``, ``round``, ``started``, ``decided``,
    ``_majority``, ``_multiplicity`` — is scalar state updated by
    rebinding, which is fork-private without a barrier (see
    :mod:`repro.protocols.base`).  ``_end_round_one``/``_end_round_two``
    only *read* ``_received`` (``dict.get``), which never needs a
    barrier.  The ``cow-barrier`` lint rule checks this discipline at
    parse time.
    """

    def __init__(self, ctx: Context) -> None:
        super().__init__(ctx)
        # Phase king tolerates fewer faults than the 3f+1 system budget.
        self.f = (ctx.n - 1) // 4
        self.value: Value | None = None
        self.phase = 1
        self.round = 1
        self.started = False
        self.decided = False
        self._received: dict[tuple[int, int], dict[ServerId, Value]] = {}
        self._majority: Value | None = None
        self._multiplicity = 0

    def king_of(self, phase: int) -> ServerId:
        """The king of ``phase`` (1-indexed into the server list)."""
        return self.ctx.servers[(phase - 1) % self.ctx.n]

    def on_request(self, request: Request) -> None:
        if isinstance(request, PkPropose):
            self._on_propose(request.value)
        elif isinstance(request, PkAdvance):
            self._on_advance()
        else:
            raise TypeError(
                f"phase king accepts PkPropose/PkAdvance requests, got {request!r}"
            )

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, PkValue):
            raise TypeError(f"phase king received foreign payload {payload!r}")
        slot = self._writable_entry(
            "_received", (payload.phase, payload.round), dict
        )
        # First value per sender per round counts; a byzantine sender
        # gains nothing by repetition.
        slot.setdefault(message.sender, payload.value)

    def _on_propose(self, value: Value) -> None:
        if self.started:
            return
        self.started = True
        self.value = value
        self.ctx.broadcast(PkValue(self.phase, 1, value))

    def _on_advance(self) -> None:
        if not self.started or self.decided:
            return
        if self.round == 1:
            self._end_round_one()
        else:
            self._end_round_two()

    def _end_round_one(self) -> None:
        votes = self._received.get((self.phase, 1), {})
        self._majority, self._multiplicity = _majority_value(votes, self.value)
        if self.king_of(self.phase) == self.ctx.self_id:
            self.ctx.broadcast(PkValue(self.phase, 2, self._majority))
        self.round = 2

    def _end_round_two(self) -> None:
        king_votes = self._received.get((self.phase, 2), {})
        king_value = king_votes.get(self.king_of(self.phase), self._majority)
        threshold = self.ctx.n / 2 + self.f
        if self._multiplicity > threshold:
            self.value = self._majority
        else:
            self.value = king_value
        self.phase += 1
        self.round = 1
        if self.phase > self.f + 1:
            self.decided = True
            self.ctx.indicate(PkDecide(self.value))
        else:
            self.ctx.broadcast(PkValue(self.phase, 1, self.value))

    @property
    def rounds_total(self) -> int:
        """Total number of rounds the protocol runs: 2 per phase."""
        return 2 * (self.f + 1)


def _majority_value(
    votes: dict[ServerId, Value], fallback: Value
) -> tuple[Value, int]:
    """The most frequent value and its multiplicity; ties broken by the
    canonical encoding order so every replica agrees on the outcome."""
    if not votes:
        return fallback, 0
    counts: dict[bytes, tuple[int, Value]] = {}
    for value in votes.values():
        key = encoding_key(value)
        count, _ = counts.get(key, (0, value))
        counts[key] = (count + 1, value)
    best_key = max(counts, key=lambda k: (counts[k][0], k))
    count, value = counts[best_key]
    return value, count


#: The protocol spec handed to ``shim``/``interpret``.
phase_king_protocol = ProtocolSpec(name="phase-king", factory=PhaseKing)
