"""The deterministic protocol black box — the paper's ``P`` (§2, §4).

The embedding requires of ``P`` only that it is *deterministic*: a state
and a sequence of inputs (requests and messages) determine the next
state and the emitted messages.  This module pins that contract down as
an executable interface:

* A :class:`ProcessInstance` is one process of ``P`` — the thing the
  paper writes ``P(ℓ, s_i)`` and stores in ``B.PIs[ℓ]``.  It reacts to a
  request (:meth:`ProcessInstance.on_request`) or a message
  (:meth:`ProcessInstance.on_message`) by mutating its own state and
  emitting through its :class:`Context`.
* The :class:`Context` is the *only* effectful interface available to a
  process: ``send``, ``broadcast`` and ``indicate``.  It provides no
  clock and no randomness, which makes non-determinism a type error
  rather than a discipline.
* A :class:`ProtocolSpec` bundles a process factory with a protocol
  name; ``interpret`` instantiates one process per ``(label, server)``
  pair at the genesis blocks (§4, "we assume a running process instance
  ℓ for every s_i ∈ Srvrs").

Messages returned by a step are exactly "the messages m_1 … m_k
triggered" that the paper assumes are returned immediately (§4) —
:meth:`ProcessInstance.step_request` / :meth:`step_message` package a
call plus the outbox drain into one deterministic transition.

Process instances must be deep-copyable (Algorithm 2 line 4 copies
``B.parent.PIs`` onto ``B``), which holds automatically as long as
implementations keep only plain data in their attributes.

**Structural sharing (the copy-on-write state layer).**  The paper's
footnote 1 (§4) observes that a real implementation would avoid the
per-block annotation-copy cost with a global-state representation.  We
get the same effect while keeping per-block annotations observable: a
:class:`ProcessInstance` carries a *generation stamp* and per-container
ownership stamps (the state-cell table ``_cells``), :meth:`~ProcessInstance.fork`
produces an O(fields) clone whose containers are *shared* with the
original, and every mutation goes through a **write barrier**
(:meth:`~ProcessInstance._writable` / :meth:`~ProcessInstance._writable_entry`)
that copies only the touched container the first time the owning
generation touches it.  Observable state is byte-identical to the
deep-copy formulation — the interpreter keeps that formulation alive as
the ``cow=False`` oracle and property tests assert trace equality.

Rules for protocol authors:

* scalar attributes (ints, bools, frozen dataclasses, ``None``) need no
  barrier — rebinding ``self.x = ...`` is automatically private;
* a flat mutable container is mutated through
  ``self._writable("_field")`` (copies the whole container once per
  generation — fine for small containers);
* a keyed container-of-containers (quorum sets per value, votes per
  view, ...) is mutated through
  ``self._writable_entry("_field", key, factory)``, which shallow-copies
  the outer map once and privatizes only the touched entry — per-step
  cost stays proportional to the touched bucket, not total state;
* never mix both barriers on the same field: ``_writable`` assumes it
  owns the field *deeply*, ``_writable_entry`` only per-entry.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from repro.dag.codec import register_dataclass
from repro.types import Indication, Label, Request, ServerId, max_faults, quorum_size


@dataclass(frozen=True, slots=True)
class Payload:
    """Marker base class for protocol message payloads.

    Concrete payloads are frozen dataclasses, so messages are hashable,
    canonically encodable (for the ``<_M`` order) and safely shared
    between simulated processes.  Subclasses self-register with the
    codec at definition time so persisted messages (checkpoints) decode
    in any process that imported the protocol.
    """

    def __init_subclass__(cls, **kwargs: object) -> None:
        # Explicit two-arg super: ``slots=True`` recreates the class,
        # invalidating the ``__class__`` cell zero-arg super needs.
        super(Payload, cls).__init_subclass__(**kwargs)
        register_dataclass(cls)


# Messages appear inside persisted checkpoints; registered for decoding.
@register_dataclass
@dataclass(frozen=True, slots=True)
class Message:
    """A protocol message ``m ∈ M_P`` with ``m.sender`` and ``m.receiver`` (§2)."""

    sender: ServerId
    receiver: ServerId
    payload: Payload


@dataclass(frozen=True, slots=True)
class StepResult:
    """Outcome of one deterministic transition: emitted messages (in
    emission order) and raised indications."""

    messages: tuple[Message, ...] = ()
    indications: tuple[Indication, ...] = ()


class Context:
    """Deterministic execution context of one process instance.

    Deliberately *minimal*: the absence of clocks, randomness, IO and
    inter-instance channels is what lets every server replay every other
    server's processes bit-for-bit (Lemma 4.2).
    """

    __slots__ = ("servers", "self_id", "label", "_outbox", "_indications")

    def __init__(
        self,
        servers: Sequence[ServerId],
        self_id: ServerId,
        label: Label,
    ) -> None:
        self.servers: tuple[ServerId, ...] = tuple(servers)
        self.self_id = self_id
        self.label = label
        self._outbox: list[Message] = []
        self._indications: list[Indication] = []

    # -- derived system-model constants --------------------------------------

    @property
    def n(self) -> int:
        """Number of servers."""
        return len(self.servers)

    @property
    def f(self) -> int:
        """Tolerated byzantine servers (``n ⩾ 3f + 1``)."""
        return max_faults(len(self.servers))

    @property
    def quorum(self) -> int:
        """Byzantine quorum size ``2f + 1``."""
        return quorum_size(len(self.servers))

    # -- effects ---------------------------------------------------------------

    def send(self, receiver: ServerId, payload: Payload) -> None:
        """Emit one message to ``receiver``."""
        self._outbox.append(Message(self.self_id, receiver, payload))

    def broadcast(self, payload: Payload) -> None:
        """Emit one message to every server, including this process
        itself (the standard 'send to all' of BFT pseudocode)."""
        for server in self.servers:
            self._outbox.append(Message(self.self_id, server, payload))

    def indicate(self, indication: Indication) -> None:
        """Raise an indication ``i ∈ Inds_P`` to the user of ``P``."""
        self._indications.append(indication)

    def _drain(self) -> StepResult:
        result = StepResult(tuple(self._outbox), tuple(self._indications))
        self._outbox = []
        self._indications = []
        return result


#: Monotone source of generation stamps.  A generation identifies one
#: *owner* of container state: the instance that created (or forked)
#: it.  Stamps only ever compare for equality, so a process-global
#: counter is enough — and it is never persisted (checkpoints snapshot
#: logical state only, see :data:`INTERNAL_STATE_ATTRS`).
_GENERATIONS = itertools.count(1)

#: Framework bookkeeping attributes that are *not* protocol state:
#: excluded from snapshots, fingerprints and checkpoints so the
#: structurally-shared representation stays observationally identical
#: to the deep-copy one.
INTERNAL_STATE_ATTRS = frozenset({"ctx", "_gen", "_cells"})


def fork_container(value: Any) -> Any:
    """Structural copy of one state container.

    Built-in mutable containers are copied recursively; everything else
    (scalars, frozen dataclasses, messages) is immutable protocol data
    and is *shared* — which is what makes this dramatically cheaper
    than ``copy.deepcopy`` on message-heavy quorum state.  Set elements
    are hashable, hence immutable, hence shareable wholesale.
    """
    if isinstance(value, dict):
        return {k: fork_container(v) for k, v in value.items()}
    if isinstance(value, set):
        return set(value)
    if isinstance(value, list):
        return [fork_container(v) for v in value]
    if isinstance(value, tuple):
        return tuple(fork_container(v) for v in value)
    return value


class ProcessInstance(ABC):
    """One process of a deterministic protocol ``P`` — ``B.PIs[ℓ]``.

    Subclasses implement :meth:`on_request` and :meth:`on_message`,
    using ``self.ctx`` for all effects.  State lives in plain instance
    attributes; the framework *forks* instances along parent chains
    (Algorithm 2 line 4) with structural sharing — see the module
    docstring — while ``copy.deepcopy`` remains valid (and is the
    ``cow=False`` oracle's copy discipline): a deep copy clones ``_gen``
    and ``_cells`` together, so the clone owns exactly what the original
    owned, over containers that are now private anyway.
    """

    def __init__(self, ctx: Context) -> None:
        self.ctx = ctx
        #: This instance's generation stamp (who "I" am as an owner).
        self._gen = next(_GENERATIONS)
        #: The state-cell table: container field name (or ``(name,
        #: key)`` for keyed entries) -> generation that privately owns
        #: it.  Empty after a fork — nothing is owned until written.
        self._cells: dict[Hashable, int] = {}

    # -- structural sharing (the copy-on-write state layer) ---------------------

    def fork(self) -> "ProcessInstance":
        """An O(fields) clone sharing every container with ``self``.

        The clone gets a fresh generation and an empty cell table, so
        its first mutation of any container copies it (write barrier);
        untouched containers stay shared forever.  The context is
        shared too — it carries only static identity plus effect queues
        that are drained within every step.  This is Algorithm 2's
        line-4 copy made O(1)-ish; equivocation forks still split state
        exactly as the paper describes, because *each* sibling copies
        before its first write.
        """
        cls = type(self)
        clone = cls.__new__(cls)
        if hasattr(self, "__dict__"):
            clone.__dict__.update(self.__dict__)
        for klass in cls.__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if hasattr(self, slot):
                    object.__setattr__(clone, slot, getattr(self, slot))
        clone._gen = next(_GENERATIONS)
        clone._cells = {}
        return clone

    def _writable(self, name: str) -> Any:
        """Write barrier for a flat container field.

        Returns a container the current generation privately owns,
        copying the (possibly shared) one on first touch.  Mutations of
        container fields must go through here (or
        :meth:`_writable_entry`); reads never need to.
        """
        value = getattr(self, name)
        if self._cells.get(name) != self._gen:
            value = fork_container(value)
            setattr(self, name, value)
            self._cells[name] = self._gen
        return value

    # lint: effect() — `factory` is always a container constructor (dict,
    # set, list) supplied at the call site inside a certified handler; it
    # allocates fresh state and touches nothing outside the instance.
    def _writable_entry(
        self, name: str, key: Hashable, factory: Callable[[], Any]
    ) -> Any:
        """Write barrier for one entry of a keyed container-of-containers.

        Privatizes the *outer* map with a shallow copy (entries still
        shared) once per generation, then privatizes only the ``key``
        entry — creating it via ``factory`` when absent.  Per-step cost
        is O(outer size) pointer-copying once plus O(touched bucket),
        independent of how much state the other buckets hold: the
        property behind the flat curve of ``bench_cow_states``.
        """
        outer = getattr(self, name)
        if self._cells.get(name) != self._gen:
            outer = dict(outer)
            setattr(self, name, outer)
            self._cells[name] = self._gen
        cell = (name, key)
        if self._cells.get(cell) != self._gen:
            entry = outer.get(key)
            entry = factory() if entry is None else fork_container(entry)
            outer[key] = entry
            self._cells[cell] = self._gen
            return entry
        return outer[key]

    # -- protocol logic (implemented by concrete protocols) --------------------

    @abstractmethod
    def on_request(self, request: Request) -> None:
        """React to a user request ``r ∈ Rqsts_P``."""

    @abstractmethod
    def on_message(self, message: Message) -> None:
        """React to a received message ``m`` with ``m.receiver = self``."""

    # -- framework-facing deterministic transitions -----------------------------

    def step_request(self, request: Request) -> StepResult:
        """Apply a request and return the triggered messages/indications
        (the paper's 'immediately returns messages m_1 … m_k')."""
        self.on_request(request)
        return self.ctx._drain()

    def step_message(self, message: Message) -> StepResult:
        """Apply a message delivery and return what it triggered."""
        if message.receiver != self.ctx.self_id:
            raise ValueError(
                f"message for {message.receiver!r} delivered to process of "
                f"{self.ctx.self_id!r}"
            )
        self.on_message(message)
        return self.ctx._drain()


#: Factory building one process instance for a ``(label, server)`` pair.
ProcessFactory = Callable[[Context], ProcessInstance]


@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol as the framework sees it: a name plus a process factory.

    ``interpret`` calls ``spec.create(servers, self_id, label)`` once per
    simulated server per label; everything else about ``P`` stays
    opaque.
    """

    name: str
    factory: ProcessFactory

    def create(
        self,
        servers: Sequence[ServerId],
        self_id: ServerId,
        label: Label,
    ) -> ProcessInstance:
        """Instantiate the process ``P(ℓ, s_i)``."""
        return self.factory(Context(servers, self_id, label))


@dataclass
class Trace:
    """A recorded execution trace of a protocol instance set.

    Used by equivalence tests (Theorem 5.1): two executions of ``P`` are
    compared by their per-server indication sequences — the observable
    behaviour at the user interface.
    """

    indications: dict[ServerId, list[tuple[Label, Indication]]] = field(
        default_factory=dict
    )

    def record(self, server: ServerId, label: Label, indication: Indication) -> None:
        """Append an indication observed at ``server`` for instance ``label``."""
        self.indications.setdefault(server, []).append((label, indication))

    def at(self, server: ServerId) -> list[tuple[Label, Indication]]:
        """Indication sequence observed at ``server``."""
        return list(self.indications.get(server, []))

    def per_label(self, server: ServerId, label: Label) -> list[Indication]:
        """Indications at ``server`` for one instance."""
        return [i for (l, i) in self.indications.get(server, []) if l == label]
