"""A trivial deterministic protocol used by unit tests.

``CounterProtocol`` exposes the embedding's message plumbing with no
thresholds or fault logic in the way: an ``Inc(x)`` request broadcasts
``Add(x)``; every process sums what it receives and indicates the
running total after each addition.  Tests assert on the exact message
and indication sequences, which makes it a sharp probe of Algorithm 2's
bookkeeping (buffer contents, ordering by ``<_M``, per-block state).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocols.base import Context, Message, Payload, ProcessInstance, ProtocolSpec
from repro.types import Indication, Request


@dataclass(frozen=True, slots=True)
class Inc(Request):
    """Request: add ``amount`` at every server."""

    amount: int


@dataclass(frozen=True, slots=True)
class Add(Payload):
    """Message: ``amount`` to be added."""

    amount: int


@dataclass(frozen=True, slots=True)
class Total(Indication):
    """Indication: running total after an addition."""

    value: int


class CounterProtocol(ProcessInstance):
    """Sum all received ``Add`` amounts; indicate the total each time.

    **COW audit note.**  This protocol holds *scalar state only*
    (``total``, ``request_count``: ints), so it needs no
    ``_writable``/``_writable_entry`` barrier anywhere: rebinding a
    scalar (``self.total += x`` rebinds — int ``+=`` allocates a new
    object) is automatically private to the writing fork, per the
    protocol-author rules in :mod:`repro.protocols.base`.  The
    ``cow-barrier`` lint rule encodes the same convention (bare-
    attribute augmented assignment is a scalar rebind by contract),
    and the ``cow=True`` vs ``cow=False`` trace-equality test in
    ``tests/unit/test_cow.py`` proves the exemption holds at runtime.
    Adding any *container* attribute here obligates a barrier.
    """

    def __init__(self, ctx: Context) -> None:
        super().__init__(ctx)
        self.total = 0
        self.request_count = 0

    def on_request(self, request: Request) -> None:
        if not isinstance(request, Inc):
            raise TypeError(f"counter accepts Inc requests, got {request!r}")
        self.request_count += 1
        self.ctx.broadcast(Add(request.amount))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, Add):
            raise TypeError(f"counter received foreign payload {payload!r}")
        self.total += payload.amount
        self.ctx.indicate(Total(self.total))


#: The protocol spec handed to ``shim``/``interpret``.
counter_protocol = ProtocolSpec(name="counter", factory=CounterProtocol)
