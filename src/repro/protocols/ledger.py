"""A replicated append-only ledger — the growing-state workload.

The broadcast protocols (BRB/BCB) and the toy counter keep O(1)-ish
per-instance state, which made the interpreter's per-step deep copy
look cheap.  Real replicated services *accumulate*: every applied
command grows the state that Algorithm 2's line-4 copy has to carry to
the next block.  This protocol makes that cost model explicit — and is
the workload behind ``benchmarks/bench_cow_states.py``, which shows the
structurally-shared state layer keeping per-block cost flat while the
``copy.deepcopy`` oracle's cost grows with ledger size.

Interface::

    Rqsts = { append(v) | v ∈ Vals }
    Inds  = { applied(seq, v) }

An ``append(v)`` broadcasts ``ENTRY v``; every process applies received
entries in ``<_M`` order, bucketing them by sequence number
(``_BUCKET_SIZE`` entries per bucket) so a single application touches
one bucket — the shape the write barrier's
:meth:`~repro.protocols.base.ProcessInstance._writable_entry` rewards
with O(bucket) copies instead of O(ledger).

Determinism: state is a pure function of the applied-entry sequence,
which the embedding fixes via ``<_M`` (§2) — every server's simulation
of every process applies the same entries in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import Context, Message, Payload, ProcessInstance, ProtocolSpec
from repro.types import Indication, Request

Value = Any

#: Entries per storage bucket: the write barrier privatizes one bucket
#: per touched write, so this bounds the per-step copy cost.
_BUCKET_SIZE = 16


@dataclass(frozen=True, slots=True)
class Append(Request):
    """Request: append ``value`` to the replicated ledger."""

    value: Value


@dataclass(frozen=True, slots=True)
class Entry(Payload):
    """Message: ``value`` to be applied by every replica."""

    value: Value


@dataclass(frozen=True, slots=True)
class Applied(Indication):
    """Indication: ``value`` was applied at ledger position ``seq``."""

    seq: int
    value: Value


class Ledger(ProcessInstance):
    """One replica of the append-only ledger."""

    def __init__(self, ctx: Context) -> None:
        super().__init__(ctx)
        #: Applied entries, bucketed: ``seq // _BUCKET_SIZE -> [values]``.
        self._buckets: dict[int, list[Value]] = {}
        self.count = 0

    def on_request(self, request: Request) -> None:
        if not isinstance(request, Append):
            raise TypeError(f"ledger accepts Append requests, got {request!r}")
        self.ctx.broadcast(Entry(request.value))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, Entry):
            raise TypeError(f"ledger received foreign payload {payload!r}")
        seq = self.count
        bucket = self._writable_entry("_buckets", seq // _BUCKET_SIZE, list)
        bucket.append(payload.value)
        self.count = seq + 1
        self.ctx.indicate(Applied(seq, payload.value))

    # -- introspection ---------------------------------------------------------

    def entries(self) -> list[Value]:
        """The applied sequence, in order (tests and examples)."""
        return [
            value
            for index in sorted(self._buckets)
            for value in self._buckets[index]
        ]


#: The protocol spec handed to ``shim``/``interpret``.
ledger_protocol = ProtocolSpec(name="ledger", factory=Ledger)
