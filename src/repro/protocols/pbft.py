"""Deterministic leader-based consensus — simplified PBFT, Blockmania-style.

Blockmania (Danezis & Hrycyszyn 2018) — one of the four systems the
paper generalizes — interprets its block DAG as a *simplified PBFT*.
This module provides that protocol as an embeddable black box: a
single-shot, view-based, three-phase consensus (pre-prepare / prepare /
commit) with view changes.

**Determinism and timers.**  PBFT's liveness relies on timeouts, but
the embedding requires ``P`` to be deterministic (§2): a process may
not read a clock.  Following the paper's observation that "the exact
requirements on the network synchronicity depend on the protocol P" and
its §7 discussion of partial synchrony, timeouts are reified as
explicit :class:`Tick` *requests*: the environment (the shim user, or a
test harness) injects ticks, and a process that sees ``TIMEOUT`` ticks
without progress votes for a view change.  This turns partial synchrony
into data — exactly the trick Blockmania plays by reading timeouts off
the DAG structure — and keeps every transition a pure function of the
input sequence.

Interface::

    Rqsts = { propose(v) | v ∈ Vals } ∪ { tick }
    Inds  = { decide(v) }

Safety: agreement and validity hold with ``n ⩾ 3f + 1`` under the usual
PBFT quorum-intersection argument (view-change messages carry the
sender's prepared certificate; in the embedded setting those claims are
independently recomputable from the DAG, making them unforgeable).
Liveness: a decision is reached once a correct leader's view lasts long
enough — i.e. ticks are injected slowly enough, the moral equivalent of
partial synchrony.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.dag.codec import encoding_key
from repro.protocols.base import Context, Message, Payload, ProcessInstance, ProtocolSpec
from repro.types import Indication, Request, ServerId

Value = Any

#: Ticks a process waits in a view before voting to change it.
DEFAULT_TIMEOUT = 3


@dataclass(frozen=True, slots=True)
class Propose(Request):
    """Request: propose ``value`` for decision."""

    value: Value


@dataclass(frozen=True, slots=True)
class Tick(Request):
    """Request: one unit of logical time passed (drives view changes)."""


@dataclass(frozen=True, slots=True)
class Decide(Indication):
    """Indication: consensus decided ``value``."""

    value: Value


@dataclass(frozen=True, slots=True)
class PrePrepare(Payload):
    """Leader's proposal for ``view``."""

    view: int
    value: Value


@dataclass(frozen=True, slots=True)
class Prepare(Payload):
    """First-phase vote."""

    view: int
    value: Value


@dataclass(frozen=True, slots=True)
class Commit(Payload):
    """Second-phase vote."""

    view: int
    value: Value


@dataclass(frozen=True, slots=True)
class ViewChange(Payload):
    """Vote to move to ``new_view``; carries the sender's prepared
    certificate ``(prepared_view, prepared_value)`` or ``(-1, None)``."""

    new_view: int
    prepared_view: int
    prepared_value: Value


@dataclass(frozen=True, slots=True)
class NewView(Payload):
    """New leader's re-proposal for ``view``."""

    view: int
    value: Value


class Pbft(ProcessInstance):
    """One process of simplified PBFT (single-shot consensus)."""

    def __init__(self, ctx: Context, timeout: int = DEFAULT_TIMEOUT) -> None:
        super().__init__(ctx)
        self.view = 0
        self.decided: Value | None = None
        self.done = False
        self.pending: Value | None = None  # value from a local Propose request
        self.timeout = timeout
        self.ticks_in_view = 0
        self._preprepared: dict[int, Value] = {}  # view -> accepted proposal
        self._sent_prepare: set[int] = set()
        self._sent_commit: set[int] = set()
        self._sent_preprepare: set[int] = set()
        self._sent_viewchange: set[int] = set()
        self._sent_newview: set[int] = set()
        self._prepares: dict[tuple[int, bytes], set[ServerId]] = {}
        self._commits: dict[tuple[int, bytes], set[ServerId]] = {}
        self._prepare_values: dict[tuple[int, bytes], Value] = {}
        self._viewchanges: dict[int, dict[ServerId, tuple[int, Value]]] = {}
        self.prepared_view = -1
        self.prepared_value: Value | None = None

    # -- leadership -------------------------------------------------------------

    def leader_of(self, view: int) -> ServerId:
        """Round-robin leader assignment."""
        return self.ctx.servers[view % self.ctx.n]

    @property
    def is_leader(self) -> bool:
        """Whether this process leads its current view."""
        return self.leader_of(self.view) == self.ctx.self_id

    # -- requests ---------------------------------------------------------------

    def on_request(self, request: Request) -> None:
        if isinstance(request, Propose):
            self._on_propose(request.value)
        elif isinstance(request, Tick):
            self._on_tick()
        else:
            raise TypeError(f"PBFT accepts Propose/Tick requests, got {request!r}")

    def _on_propose(self, value: Value) -> None:
        if self.pending is None:
            self.pending = value
        self._maybe_lead()

    def _maybe_lead(self) -> None:
        """Leader of the current view proposes if it has something to propose."""
        if self.done or not self.is_leader or self.view in self._sent_preprepare:
            return
        value = self.prepared_value if self.prepared_view >= 0 else self.pending
        if value is None:
            return
        self._writable("_sent_preprepare").add(self.view)
        self.ctx.broadcast(PrePrepare(self.view, value))

    def _on_tick(self) -> None:
        if self.done:
            return
        self.ticks_in_view += 1
        if self.ticks_in_view >= self.timeout:
            self._vote_view_change(self.view + 1)

    def _vote_view_change(self, new_view: int) -> None:
        if new_view <= self.view or new_view in self._sent_viewchange:
            return
        self._writable("_sent_viewchange").add(new_view)
        self.view = new_view
        self.ticks_in_view = 0
        self.ctx.broadcast(
            ViewChange(new_view, self.prepared_view, self.prepared_value)
        )
        self._maybe_lead_new_view(new_view)

    # -- messages ---------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, PrePrepare):
            self._on_preprepare(message.sender, payload)
        elif isinstance(payload, Prepare):
            self._on_prepare(message.sender, payload)
        elif isinstance(payload, Commit):
            self._on_commit(message.sender, payload)
        elif isinstance(payload, ViewChange):
            self._on_viewchange(message.sender, payload)
        elif isinstance(payload, NewView):
            self._on_newview(message.sender, payload)
        else:
            raise TypeError(f"PBFT received foreign payload {payload!r}")

    def _on_preprepare(self, sender: ServerId, msg: PrePrepare) -> None:
        if self.done or msg.view != self.view:
            return
        if sender != self.leader_of(msg.view):
            return
        if msg.view in self._preprepared:
            return  # accept at most one proposal per view
        self._writable("_preprepared")[msg.view] = msg.value
        if msg.view not in self._sent_prepare:
            self._writable("_sent_prepare").add(msg.view)
            self.ctx.broadcast(Prepare(msg.view, msg.value))

    def _on_prepare(self, sender: ServerId, msg: Prepare) -> None:
        key = (msg.view, encoding_key(msg.value))
        self._writable_entry("_prepares", key, set).add(sender)
        self._writable("_prepare_values")[key] = msg.value
        self._check_prepared(msg.view)

    def _check_prepared(self, view: int) -> None:
        if self.done or view != self.view or view in self._sent_commit:
            return
        accepted = self._preprepared.get(view)
        if accepted is None:
            return
        key = (view, encoding_key(accepted))
        if len(self._prepares.get(key, ())) >= self.ctx.quorum:
            self._writable("_sent_commit").add(view)
            self.prepared_view = view
            self.prepared_value = accepted
            self.ctx.broadcast(Commit(view, accepted))

    def _on_commit(self, sender: ServerId, msg: Commit) -> None:
        key = (msg.view, encoding_key(msg.value))
        commits = self._writable_entry("_commits", key, set)
        commits.add(sender)
        if self.done:
            return
        if len(commits) >= self.ctx.quorum:
            self.decided = msg.value
            self.done = True
            self.ctx.indicate(Decide(msg.value))

    def _on_viewchange(self, sender: ServerId, msg: ViewChange) -> None:
        votes = self._writable_entry("_viewchanges", msg.new_view, dict)
        votes[sender] = (msg.prepared_view, msg.prepared_value)
        if self.done:
            return
        # Join rule: f+1 servers left our view — follow them even if our
        # own timer has not fired (standard PBFT amplification).
        if len(votes) >= self.ctx.f + 1 and msg.new_view > self.view:
            self._vote_view_change(msg.new_view)
        self._maybe_lead_new_view(msg.new_view)

    def _maybe_lead_new_view(self, new_view: int) -> None:
        """Leader of ``new_view`` announces it once a quorum voted for it."""
        if self.done or self.leader_of(new_view) != self.ctx.self_id:
            return
        if new_view in self._sent_newview or new_view != self.view:
            return
        votes = self._viewchanges.get(new_view, {})
        if self.ctx.self_id not in votes and new_view in self._sent_viewchange:
            votes = dict(votes)
            votes[self.ctx.self_id] = (self.prepared_view, self.prepared_value)
        if len(votes) < self.ctx.quorum:
            return
        # Choose the value of the highest prepared certificate; fall
        # back to our own pending proposal.  Ties broken by encoding
        # order so every replica of this process computes the same pick.
        best: tuple[int, bytes] | None = None
        value: Value | None = None
        for prepared_view, prepared_value in votes.values():
            if prepared_view < 0:
                continue
            candidate = (prepared_view, encoding_key(prepared_value))
            if best is None or candidate > best:
                best = candidate
                value = prepared_value
        if value is None:
            value = self.pending
        if value is None:
            return  # nothing to propose yet; a later Propose will lead
        self._writable("_sent_newview").add(new_view)
        self.ctx.broadcast(NewView(new_view, value))

    def _on_newview(self, sender: ServerId, msg: NewView) -> None:
        if self.done or sender != self.leader_of(msg.view):
            return
        if msg.view < self.view:
            return
        if msg.view > self.view:
            # The quorum moved on without us; catch up.
            self.view = msg.view
            self.ticks_in_view = 0
        if msg.view in self._preprepared:
            return
        self._writable("_preprepared")[msg.view] = msg.value
        if msg.view not in self._sent_prepare:
            self._writable("_sent_prepare").add(msg.view)
            self.ctx.broadcast(Prepare(msg.view, msg.value))


#: The protocol spec handed to ``shim``/``interpret``.
pbft_protocol = ProtocolSpec(name="pbft", factory=Pbft)


def pbft_protocol_with_timeout(timeout: int) -> ProtocolSpec:
    """A PBFT spec with a non-default view-change timeout (in ticks)."""
    return ProtocolSpec(
        name=f"pbft-t{timeout}",
        factory=lambda ctx: Pbft(ctx, timeout=timeout),
    )
