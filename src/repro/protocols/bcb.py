"""Byzantine consistent broadcast — authenticated echo broadcast.

After Cachin, Guerraoui & Rodrigues, Module 3.10 ("authenticated echo
broadcast", Srikanth–Toueg style).  Weaker than reliable broadcast —
consistency without totality — and cheaper: one echo round, no ready
amplification.  It is the abstraction underlying broadcast-based
payment systems (FastPay, Astro) that the paper's introduction
motivates, which is why we embed it alongside BRB.

Interface::

    Rqsts = { bcb-broadcast(v) | v ∈ Vals }
    Inds  = { bcb-deliver(origin, v) }

Properties: validity, no duplication, integrity, and **consistency** —
no two correct servers deliver different values for the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import Context, Message, Payload, ProcessInstance, ProtocolSpec
from repro.types import Indication, Request, ServerId

Value = Any


@dataclass(frozen=True, slots=True)
class BcbBroadcast(Request):
    """Request: broadcast ``value`` consistently on this instance."""

    value: Value


@dataclass(frozen=True, slots=True)
class BcbDeliver(Indication):
    """Indication: ``value`` from ``origin`` is consistent."""

    origin: ServerId
    value: Value


@dataclass(frozen=True, slots=True)
class Send(Payload):
    """The sender's ``SEND v``."""

    value: Value


@dataclass(frozen=True, slots=True)
class BcbEcho(Payload):
    """A witness ``ECHO origin v``."""

    origin: ServerId
    value: Value


class ConsistentBroadcast(ProcessInstance):
    """One process of authenticated echo broadcast.

    The instance's sender is whichever server first requests
    ``BcbBroadcast`` (one label = one instance, matching BRB usage).
    Each process echoes at most one ``(origin, value)`` pair; a quorum
    of matching echoes makes the value consistent.
    """

    def __init__(self, ctx: Context) -> None:
        super().__init__(ctx)
        self.sent = False
        self._echoed_for: set[ServerId] = set()
        self.delivered = False
        self._echoes: dict[tuple[ServerId, Value], set[ServerId]] = {}

    def on_request(self, request: Request) -> None:
        if not isinstance(request, BcbBroadcast):
            raise TypeError(f"BCB accepts BcbBroadcast requests, got {request!r}")
        if self.sent:
            return
        self.sent = True
        self.ctx.broadcast(Send(request.value))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Send):
            self._on_send(message.sender, payload.value)
        elif isinstance(payload, BcbEcho):
            self._on_echo(message.sender, payload.origin, payload.value)
        else:
            raise TypeError(f"BCB received foreign payload {payload!r}")

    def _on_send(self, origin: ServerId, value: Value) -> None:
        # Echo at most once per origin: an equivocating origin gets at
        # most one echo from each correct process, so conflicting values
        # cannot both reach a quorum.
        if origin in self._echoed_for:
            return
        self._writable("_echoed_for").add(origin)
        self.ctx.broadcast(BcbEcho(origin, value))

    def _on_echo(self, sender: ServerId, origin: ServerId, value: Value) -> None:
        witnesses = self._writable_entry("_echoes", (origin, value), set)
        witnesses.add(sender)
        if len(witnesses) >= self.ctx.quorum and not self.delivered:
            self.delivered = True
            self.ctx.indicate(BcbDeliver(origin, value))


#: The protocol spec handed to ``shim``/``interpret``.
bcb_protocol = ProtocolSpec(name="bcb", factory=ConsistentBroadcast)
