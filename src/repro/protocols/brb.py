"""Byzantine reliable broadcast — authenticated double-echo (Algorithm 4).

This is the paper's running example ``P`` (§5): Bracha-style reliable
broadcast after Cachin, Guerraoui & Rodrigues, Module 3.12.

Interface::

    Rqsts = { broadcast(v) | v ∈ Vals }
    Inds  = { deliver(v)   | v ∈ Vals }

Messages are ``ECHO v`` and ``READY v``.  Properties (all preserved by
the embedding, Theorem 5.1):

* **validity** — if a correct server broadcasts ``v``, every correct
  server eventually delivers ``v``;
* **no duplication** — every correct server delivers at most once;
* **integrity** — if a correct server delivers ``v`` and the sender is
  correct, ``v`` was broadcast;
* **consistency** — no two correct servers deliver different values;
* **totality** — if any correct server delivers, every correct server
  eventually delivers.

One label = one broadcast instance; the server that issues the
``broadcast(v)`` request is that instance's sender.  Request
authentication is ``P``'s own concern (§5, "we assume that P — not
shim(P) — authenticates requests"): in the embedding it is inherited
from the block signature of the block carrying the request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import Context, Message, Payload, ProcessInstance, ProtocolSpec
from repro.types import Indication, Request, ServerId

#: Values are any canonically-encodable payload (ints in the paper's examples).
Value = Any


@dataclass(frozen=True, slots=True)
class Broadcast(Request):
    """Request ``broadcast(v)``."""

    value: Value


@dataclass(frozen=True, slots=True)
class Deliver(Indication):
    """Indication ``deliver(v)``."""

    value: Value


@dataclass(frozen=True, slots=True)
class Echo(Payload):
    """``ECHO v`` message."""

    value: Value


@dataclass(frozen=True, slots=True)
class Ready(Payload):
    """``READY v`` message."""

    value: Value


class ReliableBroadcast(ProcessInstance):
    """One process of authenticated double-echo broadcast (Algorithm 4).

    State is the three booleans of the paper's pseudocode plus per-value
    sender sets for the two amplification thresholds.
    """

    def __init__(self, ctx: Context) -> None:
        super().__init__(ctx)
        self.echoed = False
        self.readied = False
        self.delivered = False
        self._echo_senders: dict[Value, set[ServerId]] = {}
        self._ready_senders: dict[Value, set[ServerId]] = {}

    # Algorithm 4, lines 3–5: upon broadcast(v).
    def on_request(self, request: Request) -> None:
        if not isinstance(request, Broadcast):
            raise TypeError(f"BRB accepts Broadcast requests, got {request!r}")
        if self.echoed:
            return
        self.echoed = True
        self.ctx.broadcast(Echo(request.value))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Echo):
            self._on_echo(message.sender, payload.value)
        elif isinstance(payload, Ready):
            self._on_ready(message.sender, payload.value)
        else:
            raise TypeError(f"BRB received foreign payload {payload!r}")

    def _on_echo(self, sender: ServerId, value: Value) -> None:
        # Lines 6–8: echo amplification (echo at most once, any value).
        if not self.echoed:
            self.echoed = True
            self.ctx.broadcast(Echo(value))
        # Lines 9–11: 2f+1 ECHO v → READY v.  Write barrier: only this
        # value's sender set is copied out of shared state.
        senders = self._writable_entry("_echo_senders", value, set)
        senders.add(sender)
        if len(senders) >= self.ctx.quorum and not self.readied:
            self.readied = True
            self.ctx.broadcast(Ready(value))

    def _on_ready(self, sender: ServerId, value: Value) -> None:
        senders = self._writable_entry("_ready_senders", value, set)
        senders.add(sender)
        # Lines 12–14: f+1 READY v → READY v (amplification).
        if len(senders) >= self.ctx.f + 1 and not self.readied:
            self.readied = True
            self.ctx.broadcast(Ready(value))
        # Lines 15–17: 2f+1 READY v → deliver(v).
        if len(senders) >= self.ctx.quorum and not self.delivered:
            self.delivered = True
            self.ctx.indicate(Deliver(value))


#: The protocol spec handed to ``shim``/``interpret``.
brb_protocol = ProtocolSpec(name="brb", factory=ReliableBroadcast)
