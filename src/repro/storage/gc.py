"""Pruning/GC — bounding memory below a fully-interpreted stable frontier.

Long runs accumulate three things per block: the full block (with its
request payload), the interpreter's ``BlockState`` annotation (process
instances + message buffers — by far the largest), and the WAL record.
All three are only ever needed again if some *future* block references
the pruned block directly (Algorithm 2 reads the states and ``rs`` of a
block's direct predecessors).

The pruner therefore releases a block ``B`` only when it is provably
past every correct server's referencing window:

1. **Durable** — ``B``'s annotation is inside the latest written
   checkpoint, so recovery never needs to recompute it.
2. **Fully referenced** — every server in ``Srvrs`` already has a block
   in our DAG that lists ``B`` as a direct predecessor (for ``B``'s own
   builder the parent link counts).  A correct server references any
   foreign block in exactly one of its own blocks (Lemma A.6), so once
   all ``n`` referencing blocks exist, no *correct* server will ever
   name ``B`` again.
3. **Settled** — every current direct successor of ``B`` is itself
   interpreted, so no in-flight interpretation still needs ``B``.
4. **Down-closed** — all of ``B``'s predecessors are already pruned (or
   prunable in the same pass), so the pruned region is a prefix of the
   DAG and WAL segments can be dropped front-to-back.

A byzantine server that never references ``B`` simply blocks ``B``'s
pruning forever — GC stalls, safety never degrades.  If a byzantine
server *does* reference a pruned block in a fresh block (impossible for
correct servers by rule 2), interpretation of that block raises
:class:`~repro.errors.PrunedStateError` — the below-horizon rejection
every practical DAG-BFT GC scheme (Adelie's garbage-collection rounds,
Lachesis epoch pruning) accepts by design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.blockdag import BlockDag
from repro.dag.traversal import topological_order
from repro.interpret.interpreter import Interpreter
from repro.types import BlockRef


@dataclass
class PruneReport:
    """What one pruning pass released."""

    states_released: int = 0
    payloads_dropped: int = 0
    payload_bytes_dropped: int = 0


def prunable_refs(
    dag: BlockDag,
    interpreter: Interpreter,
    durable: frozenset[BlockRef],
) -> list[BlockRef]:
    """Refs safe to release, in topological (prefix-first) order.

    ``durable`` is the set of refs whose annotations the latest written
    checkpoint holds (rule 1); the graph rules 2–4 are evaluated against
    the current DAG.
    """
    servers = set(interpreter.servers)
    result: list[BlockRef] = []
    accepted: set[BlockRef] = set(interpreter.released)
    for block in topological_order(dag):
        ref = block.ref
        if ref in accepted:
            continue
        if ref not in durable or ref not in interpreter.interpreted:
            continue
        successors = dag.graph.successors(ref)
        if not all(s in interpreter.interpreted for s in successors):
            continue
        referencing = {dag.require(s).n for s in successors}
        if referencing < servers:
            continue
        if not all(p in accepted for p in set(block.preds)):
            continue
        accepted.add(ref)
        result.append(ref)
    return result


def prune(
    dag: BlockDag,
    interpreter: Interpreter,
    durable: frozenset[BlockRef],
) -> PruneReport:
    """Release interpreter states and drop block payloads below the
    stable frontier.  WAL segment dropping is the storage layer's job
    (it needs the *next* checkpoint to cover the skeletons first)."""
    report = PruneReport()
    for ref in prunable_refs(dag, interpreter, durable):
        interpreter.release_state(ref)
        report.states_released += 1
        freed = dag.drop_payload(ref)
        if freed is not None:
            report.payloads_dropped += 1
            report.payload_bytes_dropped += freed
    return report
