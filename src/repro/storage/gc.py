"""Pruning/GC — bounding memory below a fully-interpreted stable frontier.

Long runs accumulate three things per block: the full block (with its
request payload), the interpreter's ``BlockState`` annotation (process
instances + message buffers — by far the largest), and the WAL record.
All three are only ever needed again if some *future* block references
the pruned block directly (Algorithm 2 reads the states and ``rs`` of a
block's direct predecessors).

The pruner releases a block ``B`` only when it is provably past every
correct server's referencing window:

1. **Durable** — ``B``'s annotation is inside the latest written
   checkpoint, so recovery never needs to recompute it (and late
   references can *rehydrate* it, see below).
2. **Past the referencing window** — either of:

   * **Fully referenced** (the seed rule): every server in ``Srvrs``
     already has a block in our DAG listing ``B`` as a direct
     predecessor.  A correct server references any foreign block in
     exactly one of its own blocks (Lemma A.6) — but byzantine servers
     violate exactly this (an equivocator references once *per fork
     branch*), and a crashed server stops referencing at all, so alone
     this rule either stalls interpretation or stalls GC.
   * **Below the agreed horizon** (coordinated GC, PR 4): ``n - f``
     distinct servers claimed a durable frontier covering ``B``'s chain
     position (:mod:`repro.horizon`).  Crash-tolerant — ``f`` silent
     seats cannot stall GC — and byzantine-safe: any honest block
     arrives before the quorum of claims that would condemn its
     references (see :mod:`repro.horizon.tracker`).

3. **Settled** — every current direct successor of ``B`` is itself
   interpreted, so no in-flight interpretation still needs ``B``.
4. **Down-closed** — all of ``B``'s predecessors are already pruned (or
   prunable in the same pass), so the pruned region is a prefix of the
   DAG and WAL segments can be dropped front-to-back.

Releasing memory and destroying data are now two different tiers.  A
released *state* stays reconstructible from the covering checkpoint
(which carries released annotations forward until the agreed horizon
passes them), so a late byzantine re-reference above the horizon
rehydrates instead of stalling its honest descendants.  Payloads — and
with them WAL segments and checkpointed annotations — are destroyed
only when a block is **both** below the agreed horizon **and** fully
referenced: below the horizon, new references are condemned by the
gossip validity rule, and full reference means no *restarting* correct
server still needs the block over FWD (a server that crashed before
referencing it must be able to fetch the full block when it comes
back — data destruction waits for it, memory release does not).
Without a horizon (legacy callers), payload dropping follows the
release as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.dag.blockdag import BlockDag
from repro.dag.traversal import topological_order
from repro.interpret.interpreter import Interpreter
from repro.types import BlockRef, SeqNum, ServerId


@dataclass
class PruneReport:
    """What one pruning pass released."""

    states_released: int = 0
    payloads_dropped: int = 0
    payload_bytes_dropped: int = 0


def prunable_refs(
    dag: BlockDag,
    interpreter: Interpreter,
    durable: frozenset[BlockRef],
    horizon: Mapping[ServerId, SeqNum] | None = None,
    pinned: frozenset[BlockRef] = frozenset(),
) -> list[BlockRef]:
    """Refs safe to release, in topological (prefix-first) order.

    ``durable`` is the set of refs whose annotations the latest written
    checkpoint holds (rule 1); ``horizon`` is the agreed horizon vector
    (rule 2's coordinated arm; ``None`` = legacy full-reference only);
    the graph rules are evaluated against the current DAG.  ``pinned``
    refs are exempt from release even when every rule holds — the
    shim pins the last few checkpoints' cone, because a block released
    the instant it is fully referenced tends to be re-read (and
    rehydrated from the checkpoint) by stragglers a round or two later:
    release→rehydrate thrash that inflates ``rehydrated`` for zero
    memory benefit.  Pinning only *delays* release, so every safety
    argument is untouched.
    """
    servers = set(interpreter.servers)
    result: list[BlockRef] = []
    accepted: set[BlockRef] = set(interpreter.released)
    for block in topological_order(dag):
        ref = block.ref
        if ref in accepted:
            continue
        if ref in pinned:
            continue
        if ref not in durable or ref not in interpreter.interpreted:
            continue
        successors = dag.graph.successors(ref)
        if not all(s in interpreter.interpreted for s in successors):
            continue
        covered = horizon is not None and block.k <= horizon.get(block.n, -1)
        if not covered:
            referencing = {dag.require(s).n for s in successors}
            if referencing < servers:
                continue
        if not all(p in accepted for p in set(block.preds)):
            continue
        accepted.add(ref)
        result.append(ref)
    return result


def prune(
    dag: BlockDag,
    interpreter: Interpreter,
    durable: frozenset[BlockRef],
    horizon: Mapping[ServerId, SeqNum] | None = None,
    allow_destruction: bool = True,
    protected: frozenset[BlockRef] = frozenset(),
    destruction_delay: int = 0,
    streaks: "dict[BlockRef, int] | None" = None,
    pinned: frozenset[BlockRef] = frozenset(),
    tracer: object | None = None,
) -> PruneReport:
    """Release interpreter states and drop block payloads below the
    stable frontier.  WAL segment dropping is the storage layer's job
    (it needs the *next* checkpoint to cover the skeletons first).

    With a ``horizon``, payloads are dropped only for blocks that are
    below the agreed horizon *and* fully referenced — a released block
    that fails either test keeps its ``rs`` so a late reference can
    still be interpreted (state rehydrated from the covering
    checkpoint, payload read from the DAG) and a restarting server can
    still FWD-fetch the full block.  The payload-pruned region
    additionally stays down-closed (a checkpoint skeleton's
    predecessors must themselves be skeletons or older), so recovery
    can rebuild the DAG skeletons-first.

    Three last lines of defence guard the admission race (a block may
    arrive referencing a candidate between release and destruction):

    * ``protected`` names refs some *buffered* block already references
      (gossip knows them — destroying one would doom the buffered block
      on admission);
    * ``allow_destruction=False`` defers the payload sweep entirely
      while the server is visibly catching up (many known-missing
      predecessors, or its chain far behind its peers' tips);
    * ``destruction_delay``/``streaks`` add hysteresis: a candidate
      must stay destruction-eligible for ``destruction_delay``
      *consecutive* passes (the caller persists ``streaks`` across
      calls) before its data is destroyed.  A restarted server's first
      quiet instant mid-catch-up looks exactly like steady state to
      instantaneous signals — the block vouching for a delayed fork
      sibling may simply not have arrived yet; the delay gives it a
      checkpoint cycle or two to surface, after which the settledness
      and ``protected`` checks reset the clock.

    State release stays active either way — released states are
    rehydratable, destruction is not.

    ``pinned`` (see :func:`prunable_refs`) exempts the recent-cone
    window from memory release — the anti-thrash damper; since pinned
    blocks are never released, they can never become destruction
    candidates either.

    ``tracer`` (a :class:`~repro.obs.trace.TraceRecorder`, enabled)
    gets one aggregate ``gc-release``/``gc-destroy`` event per pass
    that did any work.
    """
    report = PruneReport()
    for ref in prunable_refs(
        dag, interpreter, durable, horizon=horizon, pinned=pinned
    ):
        interpreter.release_state(ref)
        report.states_released += 1
        if horizon is None:
            _drop_payload(dag, ref, report)
    if horizon is not None and allow_destruction:
        # Payload sweep: earlier passes may have released blocks that
        # only now satisfy the destruction rule.  Candidates are exactly
        # the released-but-not-yet-destroyed refs (the carried set —
        # bounded in steady state), NOT the whole DAG: skeletonized
        # history never needs re-examination.  A k-sorted fixpoint loop
        # keeps the payload-pruned region a down-closed prefix without
        # a full topological scan per checkpoint.
        servers = set(interpreter.servers)
        payload_dropped = set(dag.pruned_payloads)
        candidates = sorted(
            (
                dag.require(ref)
                for ref in interpreter.released
                if ref not in payload_dropped
            ),
            key=lambda b: (b.k, b.ref),
        )
        examined: set[BlockRef] = set()
        progress = True
        while progress and candidates:
            progress = False
            remaining = []
            for block in candidates:
                ref = block.ref
                if ref in protected:
                    if streaks is not None:
                        streaks.pop(ref, None)
                    continue  # a buffered block needs it on admission
                if block.k > horizon.get(block.n, -1):
                    continue  # permanently deferred until H advances
                successors = dag.graph.successors(ref)
                # Settledness must hold at *destruction* time, not just
                # at release time: a late (byzantine) re-reference may
                # have been admitted since the state was released, and
                # it still needs this block's payload and carried
                # checkpoint entry to interpret.  Destroying under its
                # feet would re-open the permanent below-horizon stall.
                if not all(s in interpreter.interpreted for s in successors):
                    if streaks is not None:
                        streaks.pop(ref, None)
                    remaining.append(block)
                    continue
                if {dag.require(s).n for s in successors} < servers:
                    remaining.append(block)
                    continue
                # Hysteresis matures on the *race-relevant* conditions
                # (below-horizon, settled, fully referenced) alone.
                # Down-closure is checked after: it is pure destruction
                # sequencing, not evidence about late references — with
                # the streak gated behind it, each DAG layer had to
                # re-earn the full delay after its predecessors fell,
                # capping steady-state destruction at one layer per
                # checkpoint while gossip adds several.
                if streaks is not None and ref not in examined:
                    examined.add(ref)
                    streak = streaks.get(ref, 0) + 1
                    streaks[ref] = streak
                    if streak <= destruction_delay:
                        continue  # eligible, but not for long enough yet
                if not all(p in payload_dropped for p in set(block.preds)):
                    remaining.append(block)
                    continue
                _drop_payload(dag, ref, report)
                payload_dropped.add(ref)
                if streaks is not None:
                    streaks.pop(ref, None)
                progress = True
            candidates = remaining
    if tracer is not None and tracer.enabled:  # type: ignore[attr-defined]
        if report.states_released:
            tracer.emit("gc-release", count=report.states_released)  # type: ignore[attr-defined]
        if report.payloads_dropped:
            tracer.emit(  # type: ignore[attr-defined]
                "gc-destroy",
                count=report.payloads_dropped,
                bytes=report.payload_bytes_dropped,
            )
    return report


def _drop_payload(dag: BlockDag, ref: BlockRef, report: PruneReport) -> None:
    freed = dag.drop_payload(ref)
    if freed is not None:
        report.payloads_dropped += 1
        report.payload_bytes_dropped += freed
