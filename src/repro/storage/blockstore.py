"""Per-server durable storage: WAL + checkpoints + segment GC, one facade.

:class:`ServerStorage` is what the shim talks to.  It owns one
:class:`~repro.storage.wal.WriteAheadLog` (every inserted block,
appended as canonical bytes before the insertion takes effect) and one
:class:`~repro.storage.checkpoint.CheckpointManager` (periodic
interpreter snapshots), and coordinates the invariant that makes
pruning crash-safe:

    a WAL segment is deleted only when the **latest written checkpoint**
    covers every block in it — with a full annotation (``states``) or a
    skeleton (``skeletons``) for payload-pruned blocks.

So at every instant, (latest intact checkpoint) + (remaining WAL
suffix) reconstructs the full server state, no matter where a crash
lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.dag import codec
from repro.dag.block import Block
from repro.errors import StorageError
# The sanctioned wall-clock conduit (lint: no-wall-clock): timings taken
# here feed HotPathTimers only, never trace identity.
from repro.obs.timers import perf_counter
from repro.obs.trace import NULL_RECORDER
from repro.storage.checkpoint import Checkpoint, CheckpointManager
from repro.storage.wal import WriteAheadLog
from repro.types import BlockRef

# Blocks must decode in a process that never encoded one.
codec.register_dataclass(Block)


@dataclass(frozen=True)
class StorageConfig:
    """Tunables of a server's persistence layer."""

    #: Soft WAL segment capacity in bytes.
    segment_max_bytes: int = 64 * 1024
    #: Blocks interpreted between checkpoints.
    checkpoint_interval: int = 32
    #: Checkpoints kept on disk.
    checkpoints_retained: int = 2
    #: Whether to GC states/payloads/segments below the stable frontier.
    prune: bool = True
    #: Coordinate GC through the agreed horizon (:mod:`repro.horizon`):
    #: stamp durable-frontier claims into sealed blocks, prune against
    #: the ``n - f`` agreed horizon, condemn below-horizon references,
    #: and rehydrate released states from the covering checkpoint.
    #: ``False`` reverts to the seed's Lemma-A.6 full-reference rule
    #: (kept as the comparison arm for ``bench_gc_horizon``).
    horizon_gc: bool = True
    #: Checkpoint passes a block must stay destruction-eligible before
    #: its payload/WAL/checkpoint data is actually destroyed (horizon
    #: GC only).  Hysteresis against the admission race: a delayed fork
    #: sibling's vouching references get a couple of checkpoint cycles
    #: to surface before the data they need is gone.
    destruction_delay: int = 2
    #: Memory release exempts the last this-many checkpoints' cone
    #: (blocks interpreted since the K-th most recent checkpoint).
    #: Damps rehydration thrash: a block released the moment it is
    #: fully referenced is often re-read by a straggler a round later,
    #: forcing a checkpoint rehydration for zero memory benefit.
    #: ``0`` releases as aggressively as the rules allow (the old
    #: behavior).
    pin_recent_checkpoints: int = 2
    #: fsync WAL appends (off: simulated crashes never lose the page cache).
    fsync: bool = False


@dataclass
class StorageMetrics:
    """Counters the analysis layer reports per server."""

    wal_appends: int = 0
    wal_bytes: int = 0
    wal_segments: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    blocks_recovered: int = 0
    blocks_replayed: int = 0
    states_restored: int = 0
    states_released: int = 0
    payloads_dropped: int = 0
    wal_segments_dropped: int = 0
    torn_bytes_truncated: int = 0


class ServerStorage:
    """All durable state of one server, rooted at ``directory``."""

    #: Chain frames are flushed once they hold this many blocks even if
    #: no batch boundary arrived (bounds buffered memory; durability
    #: still precedes interpretation because flushes only ever happen
    #: earlier, never later, than the batch end).
    CHAIN_FRAME_MAX_BLOCKS = 64

    def __init__(self, directory: str | Path, config: StorageConfig | None = None) -> None:
        self.directory = Path(directory)
        self.config = config if config is not None else StorageConfig()
        self.wal = WriteAheadLog(
            self.directory / "wal",
            segment_max_bytes=self.config.segment_max_bytes,
            fsync=self.config.fsync,
        )
        self.checkpoints = CheckpointManager(
            self.directory / "checkpoints",
            retain=self.config.checkpoints_retained,
        )
        self.metrics = StorageMetrics()
        #: Flight recorder / wall-clock timers (``repro.obs``) — set by
        #: the shim when tracing is on; the no-op defaults keep the
        #: write path at one attribute check each.
        self.tracer = NULL_RECORDER
        self.timers = None
        #: Live-arm :class:`~repro.obs.metrics.MetricsRegistry` — set by
        #: the live node so WAL-flush / checkpoint-write latency lands
        #: in its exported snapshots (``storage.*`` histograms).
        self.live_metrics = None
        #: Blocks appended since the last WAL flush, in insertion
        #: order.  One WAL record ("chain frame") is written per
        #: maximal same-builder run at flush time — the shim flushes at
        #: every gossip batch end, *before* interpretation, so a crash
        #: can only lose blocks that never had a visible effect.
        self._pending: list[Block] = []

    # -- queries -------------------------------------------------------------------

    def has_data(self) -> bool:
        """Whether anything durable exists to recover from."""
        return self.wal.size_bytes() > 0 or bool(self.checkpoints.sequences())

    def wal_size_bytes(self) -> int:
        return self.wal.size_bytes()

    def metrics_snapshot(self) -> StorageMetrics:
        """Refresh derived fields and return the metrics record."""
        self.metrics.wal_appends = self.wal.stats.appends
        self.metrics.wal_bytes = self.wal.size_bytes()
        self.metrics.wal_segments = len(self.wal.segments())
        self.metrics.checkpoints_written = self.checkpoints.writes
        self.metrics.checkpoint_bytes = self.checkpoints.bytes_written
        self.metrics.torn_bytes_truncated = self.wal.stats.torn_bytes_truncated
        self.metrics.wal_segments_dropped = self.wal.stats.segments_dropped
        return self.metrics

    # -- the write path ------------------------------------------------------------

    def append_block(self, block: Block) -> None:
        """Queue one inserted block for the WAL (chain-frame buffered).

        The caller contract is *flush before any visible effect*: the
        shim calls :meth:`flush_wal` at every gossip batch end, before
        the interpreter runs, so every interpreted (and a fortiori
        every checkpointed) block is durable.  Blocks buffered here and
        lost to a crash never had observable consequences — recovery
        treats them as never received and they re-arrive over gossip.
        """
        self._pending.append(block)
        if len(self._pending) >= self.CHAIN_FRAME_MAX_BLOCKS:
            self.flush_wal()

    def flush_wal(self) -> None:
        """Write buffered blocks as one WAL record per same-builder run.

        Framing a drained chain as a single record amortizes the
        per-block record header/CRC/flush cost, and tagging it with the
        builder (``chain_key``) lets the WAL rotate segments on chain
        boundaries — which is what makes whole segments retire together
        under the GC horizon."""
        if not self._pending:
            return
        timers = self.timers
        live_metrics = self.live_metrics
        if timers is not None or live_metrics is not None:
            _started = perf_counter()
        pending, self._pending = self._pending, []
        start = 0
        for i in range(1, len(pending) + 1):
            if i == len(pending) or pending[i].n != pending[start].n:
                run = pending[start:i]
                # A lone block keeps the bare-Block framing: the tuple
                # wrapper only pays for itself when it amortizes.
                payload = codec.encode(run[0] if len(run) == 1 else tuple(run))
                self.wal.append(
                    payload,
                    refs=[str(b.ref) for b in run],
                    chain_key=str(run[0].n),
                )
                if self.tracer.enabled:
                    self.tracer.emit(
                        "wal-append",
                        block=run[-1].ref,
                        bytes=len(payload),
                        blocks=len(run),
                        chain=str(run[0].n),
                    )
                start = i
        if timers is not None or live_metrics is not None:
            _elapsed = perf_counter() - _started
            if timers is not None:
                timers.observe("wal-flush", _elapsed)
            if live_metrics is not None:
                live_metrics.histogram("storage.wal-flush").observe(_elapsed)

    def write_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Persist a checkpoint, then GC WAL segments it fully covers.

        The just-written file is read back and integrity-checked before
        any segment is dropped: once those records are gone, this
        checkpoint's skeletons are the only copy of the pruned prefix,
        so GC must never act on a write the disk garbled.
        """
        # Invariant: a checkpoint never covers an unflushed block.  The
        # shim flushes before interpreting, so this is normally a
        # no-op; it makes direct callers safe too.
        self.flush_wal()
        timers = self.timers
        live_metrics = self.live_metrics
        if timers is not None or live_metrics is not None:
            _started = perf_counter()
            self.checkpoints.write(checkpoint)
            _elapsed = perf_counter() - _started
            if timers is not None:
                timers.observe("checkpoint-write", _elapsed)
            if live_metrics is not None:
                live_metrics.histogram("storage.checkpoint-write").observe(
                    _elapsed
                )
        else:
            self.checkpoints.write(checkpoint)
        if self.config.prune:
            try:
                self.checkpoints.load(checkpoint.seq)
            except (StorageError, OSError):
                return  # keep the WAL; the next checkpoint retries
            self._drop_covered_segments(checkpoint)

    def _drop_covered_segments(self, checkpoint: Checkpoint) -> None:
        """Delete non-active segments whose every record is a block the
        checkpoint can stand in for *without replay* — i.e. pruned
        blocks with a stored skeleton.  Blocks with live annotations
        still need their full content from the WAL (children may read
        their ``rs``), so only skeleton coverage counts."""
        covered = set(checkpoint.skeletons)
        for segment in self.wal.segments():
            if segment.index == self.wal.active_index:
                continue
            if not segment.refs:
                # A segment this handle never wrote nor replayed: its
                # contents are unknown — keep it.
                continue
            if all(BlockRef(ref) in covered for ref in segment.refs):
                self.wal.drop_segment(segment.index)

    # -- the recovery path ---------------------------------------------------------

    def load_blocks(self) -> list[Block]:
        """Decode every WAL record, in append (= insertion) order.

        Also re-tags segments with the refs they hold so a recovered
        handle can make pruning decisions.
        """
        blocks: list[Block] = []
        segment_refs: dict[int, list[str]] = {}
        timers = self.timers
        for index, payload in self.wal.replay():
            if timers is not None:
                _started = perf_counter()
                value = codec.decode(payload)
                timers.observe("codec-decode", perf_counter() - _started)
            else:
                value = codec.decode(payload)
            # A record is either one block (legacy framing) or a chain
            # frame: a tuple of consecutive same-builder blocks.
            frame = (value,) if isinstance(value, Block) else value
            if not isinstance(frame, (tuple, list)) or not all(
                isinstance(b, Block) for b in frame
            ):
                raise StorageError(
                    f"WAL record in segment {index} decoded to "
                    f"{type(value).__name__}, expected Block or chain frame"
                )
            for block in frame:
                blocks.append(block)
                segment_refs.setdefault(index, []).append(str(block.ref))
        for segment in self.wal.segments():
            if segment.index in segment_refs:
                segment.refs = segment_refs[segment.index]
        self.metrics.blocks_recovered = len(blocks)
        return blocks

    def latest_checkpoint(self) -> Checkpoint | None:
        return self.checkpoints.latest()

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown (crashes simply abandon the object)."""
        self.flush_wal()
        self.wal.close()
