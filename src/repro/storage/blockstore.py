"""Per-server durable storage: WAL + checkpoints + segment GC, one facade.

:class:`ServerStorage` is what the shim talks to.  It owns one
:class:`~repro.storage.wal.WriteAheadLog` (every inserted block,
appended as canonical bytes before the insertion takes effect) and one
:class:`~repro.storage.checkpoint.CheckpointManager` (periodic
interpreter snapshots), and coordinates the invariant that makes
pruning crash-safe:

    a WAL segment is deleted only when the **latest written checkpoint**
    covers every block in it — with a full annotation (``states``) or a
    skeleton (``skeletons``) for payload-pruned blocks.

So at every instant, (latest intact checkpoint) + (remaining WAL
suffix) reconstructs the full server state, no matter where a crash
lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.dag import codec
from repro.dag.block import Block
from repro.errors import StorageError
from repro.storage.checkpoint import Checkpoint, CheckpointManager
from repro.storage.wal import WriteAheadLog
from repro.types import BlockRef

# Blocks must decode in a process that never encoded one.
codec.register_dataclass(Block)


@dataclass(frozen=True)
class StorageConfig:
    """Tunables of a server's persistence layer."""

    #: Soft WAL segment capacity in bytes.
    segment_max_bytes: int = 64 * 1024
    #: Blocks interpreted between checkpoints.
    checkpoint_interval: int = 32
    #: Checkpoints kept on disk.
    checkpoints_retained: int = 2
    #: Whether to GC states/payloads/segments below the stable frontier.
    prune: bool = True
    #: Coordinate GC through the agreed horizon (:mod:`repro.horizon`):
    #: stamp durable-frontier claims into sealed blocks, prune against
    #: the ``n - f`` agreed horizon, condemn below-horizon references,
    #: and rehydrate released states from the covering checkpoint.
    #: ``False`` reverts to the seed's Lemma-A.6 full-reference rule
    #: (kept as the comparison arm for ``bench_gc_horizon``).
    horizon_gc: bool = True
    #: Checkpoint passes a block must stay destruction-eligible before
    #: its payload/WAL/checkpoint data is actually destroyed (horizon
    #: GC only).  Hysteresis against the admission race: a delayed fork
    #: sibling's vouching references get a couple of checkpoint cycles
    #: to surface before the data they need is gone.
    destruction_delay: int = 2
    #: fsync WAL appends (off: simulated crashes never lose the page cache).
    fsync: bool = False


@dataclass
class StorageMetrics:
    """Counters the analysis layer reports per server."""

    wal_appends: int = 0
    wal_bytes: int = 0
    wal_segments: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    blocks_recovered: int = 0
    blocks_replayed: int = 0
    states_restored: int = 0
    states_released: int = 0
    payloads_dropped: int = 0
    wal_segments_dropped: int = 0
    torn_bytes_truncated: int = 0


class ServerStorage:
    """All durable state of one server, rooted at ``directory``."""

    def __init__(self, directory: str | Path, config: StorageConfig | None = None) -> None:
        self.directory = Path(directory)
        self.config = config if config is not None else StorageConfig()
        self.wal = WriteAheadLog(
            self.directory / "wal",
            segment_max_bytes=self.config.segment_max_bytes,
            fsync=self.config.fsync,
        )
        self.checkpoints = CheckpointManager(
            self.directory / "checkpoints",
            retain=self.config.checkpoints_retained,
        )
        self.metrics = StorageMetrics()

    # -- queries -------------------------------------------------------------------

    def has_data(self) -> bool:
        """Whether anything durable exists to recover from."""
        return self.wal.size_bytes() > 0 or bool(self.checkpoints.sequences())

    def wal_size_bytes(self) -> int:
        return self.wal.size_bytes()

    def metrics_snapshot(self) -> StorageMetrics:
        """Refresh derived fields and return the metrics record."""
        self.metrics.wal_appends = self.wal.stats.appends
        self.metrics.wal_bytes = self.wal.size_bytes()
        self.metrics.wal_segments = len(self.wal.segments())
        self.metrics.checkpoints_written = self.checkpoints.writes
        self.metrics.checkpoint_bytes = self.checkpoints.bytes_written
        self.metrics.torn_bytes_truncated = self.wal.stats.torn_bytes_truncated
        self.metrics.wal_segments_dropped = self.wal.stats.segments_dropped
        return self.metrics

    # -- the write path ------------------------------------------------------------

    def append_block(self, block: Block) -> None:
        """Durably log one block (called *before* acting on the insert)."""
        self.wal.append(codec.encode(block), ref=str(block.ref))

    def write_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Persist a checkpoint, then GC WAL segments it fully covers.

        The just-written file is read back and integrity-checked before
        any segment is dropped: once those records are gone, this
        checkpoint's skeletons are the only copy of the pruned prefix,
        so GC must never act on a write the disk garbled.
        """
        self.checkpoints.write(checkpoint)
        if self.config.prune:
            try:
                self.checkpoints.load(checkpoint.seq)
            except (StorageError, OSError):
                return  # keep the WAL; the next checkpoint retries
            self._drop_covered_segments(checkpoint)

    def _drop_covered_segments(self, checkpoint: Checkpoint) -> None:
        """Delete non-active segments whose every record is a block the
        checkpoint can stand in for *without replay* — i.e. pruned
        blocks with a stored skeleton.  Blocks with live annotations
        still need their full content from the WAL (children may read
        their ``rs``), so only skeleton coverage counts."""
        covered = set(checkpoint.skeletons)
        for segment in self.wal.segments():
            if segment.index == self.wal.active_index:
                continue
            if not segment.refs:
                # A segment this handle never wrote nor replayed: its
                # contents are unknown — keep it.
                continue
            if all(BlockRef(ref) in covered for ref in segment.refs):
                self.wal.drop_segment(segment.index)

    # -- the recovery path ---------------------------------------------------------

    def load_blocks(self) -> list[Block]:
        """Decode every WAL record, in append (= insertion) order.

        Also re-tags segments with the refs they hold so a recovered
        handle can make pruning decisions.
        """
        blocks: list[Block] = []
        segment_refs: dict[int, list[str]] = {}
        for index, payload in self.wal.replay():
            value = codec.decode(payload)
            if not isinstance(value, Block):
                raise StorageError(
                    f"WAL record in segment {index} decoded to "
                    f"{type(value).__name__}, expected Block"
                )
            blocks.append(value)
            segment_refs.setdefault(index, []).append(str(value.ref))
        for segment in self.wal.segments():
            if segment.index in segment_refs:
                segment.refs = segment_refs[segment.index]
        self.metrics.blocks_recovered = len(blocks)
        return blocks

    def latest_checkpoint(self) -> Checkpoint | None:
        return self.checkpoints.latest()

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown (crashes simply abandon the object)."""
        self.wal.close()
