"""Append-only write-ahead log of canonical block encodings.

The WAL is the durability primitive behind the storage subsystem: every
block a server inserts into its DAG is appended *before* the insertion
takes effect, so after a crash the DAG — and, by Lemma 4.2, every
annotation the interpreter ever computed over it — is reconstructible
by replaying the log.  The format is deliberately minimal:

* the log is a directory of fixed-capacity **segment** files
  (``wal-00000001.log``, ``wal-00000002.log``, ...) so pruning can drop
  whole files once a checkpoint covers their contents;
* each record is ``length:u32 | crc32:u32 | payload``, where the CRC is
  over the payload.  Payloads are opaque bytes here; the block store
  layers the canonical codec (:mod:`repro.dag.codec`) on top.

Crash semantics: appends are flushed to the OS on every call (fsync is
optional — a simulated crash never loses the page cache), so the only
damage a crash can do is a *torn tail*: a final record whose header or
payload was cut short.  Opening a log repairs that by truncating the
last segment back to its final intact record.  A CRC failure anywhere
*else* is real corruption and raises :class:`WalCorruptionError` — the
log refuses to silently skip records, because replay order is the
recovery contract.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError, WalCorruptionError

#: Record header: payload length, crc32(payload).
_HEADER = struct.Struct(">II")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _segment_index(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    return int(stem)


@dataclass
class WalStats:
    """Operational counters of one log handle."""

    appends: int = 0
    bytes_appended: int = 0
    segments_created: int = 0
    segments_dropped: int = 0
    torn_bytes_truncated: int = 0
    syncs: int = 0


@dataclass
class WalSegment:
    """One segment file as seen by this handle."""

    index: int
    path: Path
    records: int = 0
    size: int = 0
    refs: list[str] = field(default_factory=list)
    #: Chain key (builder id) of the last record appended by this
    #: handle — transient rotation state, never persisted.
    last_chain: str | None = None


class WriteAheadLog:
    """A segmented, CRC-framed append-only log.

    Parameters
    ----------
    directory:
        Where segment files live; created if missing.
    segment_max_bytes:
        Soft capacity: a segment is rolled once an append pushes it past
        this size (a single record may exceed it).
    fsync:
        Whether to ``os.fsync`` on :meth:`sync`/roll.  Off by default —
        simulated crashes never lose flushed pages, and the benchmarks
        measure log structure, not disk hardware.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_max_bytes: int = 256 * 1024,
        fsync: bool = False,
        rotate_min_bytes: int | None = None,
    ) -> None:
        if segment_max_bytes < 1:
            raise ValueError(f"segment_max_bytes must be positive: {segment_max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        #: Builder-chain boundary rotation (GC alignment): once a
        #: segment is at least this full, the next append carrying a
        #: *different* ``chain_key`` rolls to a fresh segment.  Without
        #: it, segments end mid-chain wherever the byte cap happens to
        #: land, so in short runs nearly every segment interleaves
        #: retired (skeletal) refs with one live chain's tail and
        #: segment GC never fires.  Default: a quarter of the byte cap.
        self.rotate_min_bytes = (
            rotate_min_bytes
            if rotate_min_bytes is not None
            else max(1, segment_max_bytes // 4)
        )
        self.fsync = fsync
        self.stats = WalStats()
        self._segments: dict[int, WalSegment] = {}
        for path in sorted(self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")):
            index = _segment_index(path)
            self._segments[index] = WalSegment(
                index=index, path=path, size=path.stat().st_size
            )
        if self._segments:
            self._repair_tail(self._segments[max(self._segments)])
        self._active: WalSegment | None = None
        self._handle = None

    # -- appending ----------------------------------------------------------------

    def append(
        self,
        payload: bytes,
        ref: str | None = None,
        refs: "tuple[str, ...] | list[str] | None" = None,
        chain_key: str | None = None,
    ) -> int:
        """Append one record; returns the index of the segment it landed
        in.

        ``ref`` (one block) or ``refs`` (a chain frame holding several)
        tag the record with the block references it carries, so
        segment-granular pruning can check coverage.  ``chain_key``
        names the builder chain the record belongs to; an append whose
        key differs from the segment's previous record rotates the
        segment early once it is ``rotate_min_bytes`` full, aligning
        segment boundaries with builder-chain boundaries."""
        segment = self._writable_segment(len(payload), chain_key)
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._handle.write(record)
        self._handle.flush()
        segment.records += 1
        segment.size += len(record)
        segment.last_chain = chain_key
        if ref is not None:
            segment.refs.append(ref)
        if refs is not None:
            segment.refs.extend(refs)
        self.stats.appends += 1
        self.stats.bytes_appended += len(record)
        return segment.index

    def _should_rotate(self, segment: WalSegment, chain_key: str | None) -> bool:
        if segment.size >= self.segment_max_bytes:
            return True
        return (
            chain_key is not None
            and segment.last_chain is not None
            and chain_key != segment.last_chain
            and segment.size >= self.rotate_min_bytes
        )

    def sync(self) -> None:
        """Flush (and optionally fsync) the active segment."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self.stats.syncs += 1

    def close(self) -> None:
        """Close the active handle (a *clean* shutdown; crashes just
        abandon the object — that is the case the log is designed for)."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None
            self._active = None

    def _writable_segment(
        self, payload_size: int, chain_key: str | None = None
    ) -> WalSegment:
        if self._active is not None and self._should_rotate(self._active, chain_key):
            self.close()
        if self._active is None:
            index = max(self._segments, default=0)
            current = self._segments.get(index)
            if current is None or current.size >= self.rotate_min_bytes:
                index += 1
                current = WalSegment(
                    index=index, path=self.directory / _segment_name(index)
                )
                self._segments[index] = current
                self.stats.segments_created += 1
            self._active = current
            self._handle = open(current.path, "ab")
        return self._active

    # -- reading ------------------------------------------------------------------

    def replay(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(segment_index, payload)`` for every record, in append
        order.  Re-derives per-segment record counts as a side effect so
        a reopened log can answer :meth:`segments` accurately."""
        for index in sorted(self._segments):
            segment = self._segments[index]
            segment.records = 0
            for payload in self._scan_segment(segment, repair=False):
                segment.records += 1
                yield index, payload

    def segments(self) -> list[WalSegment]:
        """Current segments, oldest first."""
        return [self._segments[i] for i in sorted(self._segments)]

    @property
    def active_index(self) -> int | None:
        """Index of the segment currently open for appends."""
        return self._active.index if self._active is not None else None

    def size_bytes(self) -> int:
        """Total bytes across live segments."""
        return sum(s.size for s in self._segments.values())

    def record_count(self) -> int:
        """Total records across live segments (accurate after a full
        :meth:`replay`, or on a handle that did all the appends)."""
        return sum(s.records for s in self._segments.values())

    # -- pruning ------------------------------------------------------------------

    def drop_segment(self, index: int) -> bool:
        """Delete one non-active segment file; returns whether it existed.

        The caller (the GC layer) is responsible for only dropping
        segments whose every record is covered by a durable checkpoint.
        """
        segment = self._segments.get(index)
        if segment is None:
            return False
        if self._active is not None and self._active.index == index:
            raise StorageError(f"refusing to drop the active segment {index}")
        segment.path.unlink(missing_ok=True)
        del self._segments[index]
        self.stats.segments_dropped += 1
        return True

    # -- internals ----------------------------------------------------------------

    def _scan_segment(self, segment: WalSegment, repair: bool) -> Iterator[bytes]:
        """Yield intact payloads of one segment.

        ``repair=True`` truncates a torn tail instead of raising; a CRC
        mismatch on a *complete* record raises either way.
        """
        try:
            data = segment.path.read_bytes()
        except FileNotFoundError:
            return
        offset = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                self._handle_tail(segment, data, offset, repair)
                return
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                self._handle_tail(segment, data, offset, repair)
                return
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                if end >= len(data):
                    # The final record is complete in length but fails
                    # its CRC: a torn write inside the payload.
                    self._handle_tail(segment, data, offset, repair)
                    return
                raise WalCorruptionError(
                    f"CRC mismatch in {segment.path.name} at offset {offset}"
                )
            yield payload
            offset = end

    def _handle_tail(
        self, segment: WalSegment, data: bytes, offset: int, repair: bool
    ) -> None:
        if not repair:
            raise WalCorruptionError(
                f"torn record in {segment.path.name} at offset {offset} "
                f"(open the log with WriteAheadLog() to repair the tail)"
            )
        torn = len(data) - offset
        with open(segment.path, "r+b") as handle:
            handle.truncate(offset)
        segment.size = offset
        self.stats.torn_bytes_truncated += torn

    def _repair_tail(self, segment: WalSegment) -> None:
        """Drop a torn final record left by a crash mid-append."""
        for _ in self._scan_segment(segment, repair=True):
            pass
