"""Mutability-faithful serialization of process-instance state.

Checkpoints must persist the interpreter's per-block annotations —
including live :class:`~repro.protocols.base.ProcessInstance` objects —
and restore them so execution *continues bit-for-bit*.  The canonical
codec alone is not enough: it deliberately canonicalizes ``set`` to
``frozenset`` (harmless for hashing/ordering, fatal for a restored
protocol instance that wants to ``.add()`` to its quorum sets).

``freeze`` therefore rewrites a value tree into a tagged *wire form*
that records the container kind exactly — ``set`` vs ``frozenset``,
``list`` vs ``tuple`` — and is itself canonically encodable; ``thaw``
inverts it.  Frozen dataclasses (messages, payloads, requests,
indications) pass through as atoms: the codec round-trips them via its
dataclass registry, and being frozen they never need the mutability
distinction.

No pickle anywhere: like the rest of the library, persistence is
independent of Python memory layout, and a checkpoint written by one
process restores in another as long as the protocol modules are
imported (which registers their dataclasses with the codec).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.dag import codec
from repro.errors import CheckpointError
from repro.protocols.base import (
    INTERNAL_STATE_ATTRS,
    ProcessInstance,
    ProtocolSpec,
)
from repro.types import Label, ServerId

# Wire-form tags.  Single characters keep encodings small; the tagged
# pair (tag, payload) is itself codec-encodable.
_ATOM = "a"
_LIST = "l"
_TUPLE = "t"
_DICT = "d"
_SET = "s"
_FROZENSET = "f"


def freeze(value: Any) -> Any:
    """Rewrite ``value`` into the tagged, codec-encodable wire form."""
    if isinstance(value, (list, tuple)):
        tag = _LIST if isinstance(value, list) else _TUPLE
        return (tag, tuple(freeze(v) for v in value))
    if isinstance(value, dict):
        return (
            _DICT,
            tuple((freeze(k), freeze(v)) for k, v in value.items()),
        )
    if isinstance(value, (set, frozenset)):
        tag = _SET if isinstance(value, set) else _FROZENSET
        # Sort by canonical encoding so equal sets freeze identically.
        items = sorted((freeze(v) for v in value), key=codec.encode)
        return (tag, tuple(items))
    # Scalars and frozen dataclasses: the codec handles them natively.
    return (_ATOM, value)


def thaw(wire: Any) -> Any:
    """Invert :func:`freeze`."""
    try:
        tag, payload = wire
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed wire form: {wire!r}") from exc
    if tag == _ATOM:
        return payload
    if tag == _LIST:
        return [thaw(v) for v in payload]
    if tag == _TUPLE:
        return tuple(thaw(v) for v in payload)
    if tag == _DICT:
        return {thaw(k): thaw(v) for k, v in payload}
    if tag == _SET:
        return {thaw(v) for v in payload}
    if tag == _FROZENSET:
        return frozenset(thaw(v) for v in payload)
    raise CheckpointError(f"unknown wire tag: {tag!r}")


# -- process instances ---------------------------------------------------------


def _instance_attrs(instance: ProcessInstance) -> dict[str, Any]:
    """All persistent attributes of a process instance.

    ``ctx`` is excluded (reconstructed, not stored), as are the
    copy-on-write generation stamp and cell table
    (:data:`~repro.protocols.base.INTERNAL_STATE_ATTRS`) — structural-
    sharing bookkeeping that two behaviourally identical instances may
    disagree on, and that a restored instance rebuilds fresh."""
    attrs: dict[str, Any] = {}
    if hasattr(instance, "__dict__"):
        attrs.update(instance.__dict__)
    for klass in type(instance).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot not in INTERNAL_STATE_ATTRS and hasattr(instance, slot):
                attrs.setdefault(slot, getattr(instance, slot))
    for name in INTERNAL_STATE_ATTRS:
        attrs.pop(name, None)
    return attrs


def snapshot_process(instance: ProcessInstance) -> dict[str, Any]:
    """Serializable snapshot of one process instance.

    Captures the class name (for a sanity check on restore), the static
    context identity, and every attribute in frozen wire form.
    """
    ctx = instance.ctx
    return {
        "cls": type(instance).__qualname__,
        "self_id": str(ctx.self_id),
        "label": str(ctx.label),
        "attrs": {
            name: freeze(value)
            for name, value in sorted(_instance_attrs(instance).items())
        },
    }


def restore_process(
    protocol: ProtocolSpec,
    servers: Sequence[ServerId],
    snapshot: dict[str, Any],
) -> ProcessInstance:
    """Rebuild a process instance from :func:`snapshot_process` output.

    A fresh instance is created through the protocol's own factory (so
    the context and any derived constants are rebuilt exactly as during
    live interpretation) and its attributes are overwritten with the
    thawed snapshot.
    """
    instance = protocol.create(
        servers, ServerId(snapshot["self_id"]), Label(snapshot["label"])
    )
    if type(instance).__qualname__ != snapshot["cls"]:
        raise CheckpointError(
            f"checkpoint holds a {snapshot['cls']} instance but protocol "
            f"{protocol.name!r} builds {type(instance).__qualname__}"
        )
    for name, wire in snapshot["attrs"].items():
        setattr(instance, name, thaw(wire))
    return instance


def instance_fingerprint(instance: ProcessInstance) -> bytes:
    """Canonical bytes identifying a process instance's state.

    Used by the byte-identical-annotation checks: two instances with the
    same fingerprint are behaviourally the same process state.  The raw
    codec is canonical here (dict entries and set elements sort by their
    encodings), so the fingerprint is independent of insertion order and
    of the set/frozenset distinction — exactly the equivalence the
    Lemma 4.2 assertions need.
    """
    return codec.encode(
        {
            "cls": type(instance).__qualname__,
            "attrs": _instance_attrs(instance),
        }
    )


def annotation_fingerprint(interpreter: Any, ref: Any) -> bytes:
    """Canonical bytes for one block's full annotation — ``PIs``, ``Ms``
    and active labels.

    This is the unit of the "byte-identical annotations" claim: per
    Lemma 4.2 every server must produce the same fingerprint for the
    same block, and the crash-recovery tests extend that across a
    restart-from-disk (Theorem 5.1 across a crash).
    """
    state = interpreter.state_of(ref)
    return codec.encode(
        {
            "pis": {
                str(lbl): instance_fingerprint(pi)
                for lbl, pi in state.pis.items()
            },
            "ms": state.ms.snapshot(),
            "active": sorted(interpreter.active_labels(ref)),
        }
    )


__all__ = [
    "annotation_fingerprint",
    "freeze",
    "thaw",
    "snapshot_process",
    "restore_process",
    "instance_fingerprint",
]
