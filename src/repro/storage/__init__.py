"""Durable storage & crash recovery for the block DAG framework.

The paper proves interpretation is a pure function of the DAG
(Lemma 4.2 / Theorem 5.1); this subsystem turns that into an
operational property: a server's entire state is reconstructible from
an append-only log of its blocks, and checkpoints + pruning bound both
restart time and memory.

Layers, bottom up:

* :mod:`repro.storage.wal`         — segmented, CRC-framed append-only log;
* :mod:`repro.storage.state_codec` — pickle-free (de)serialization of
  live process-instance state;
* :mod:`repro.storage.checkpoint`  — durable interpreter snapshots;
* :mod:`repro.storage.gc`          — the stable frontier and pruning;
* :mod:`repro.storage.blockstore`  — :class:`ServerStorage`, the
  per-server facade the shim talks to;
* :mod:`repro.storage.recover`     — restart-from-disk.
"""

from repro.storage.blockstore import ServerStorage, StorageConfig, StorageMetrics
from repro.storage.checkpoint import (
    Checkpoint,
    CheckpointManager,
    capture_checkpoint,
    install_checkpoint,
)
from repro.storage.gc import PruneReport, prunable_refs, prune
from repro.storage.recover import RecoveryReport, recover_shim_state
from repro.storage.wal import WalSegment, WalStats, WriteAheadLog

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "PruneReport",
    "RecoveryReport",
    "ServerStorage",
    "StorageConfig",
    "StorageMetrics",
    "WalSegment",
    "WalStats",
    "WriteAheadLog",
    "capture_checkpoint",
    "install_checkpoint",
    "prunable_refs",
    "prune",
    "recover_shim_state",
]
