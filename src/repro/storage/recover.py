"""Restart-from-disk: rebuild a shim's entire state from WAL + checkpoint.

This is the executable form of the paper's §7 observation that the
block DAG *is* the durable log: because interpretation is a pure
function of the DAG (Lemma 4.2), a crashed server recovers by

1. rebuilding the DAG — payload-pruned skeletons from the latest
   checkpoint first, then every WAL record in append (= original
   insertion) order;
2. installing the checkpointed annotations, so the prefix interpreted
   before the snapshot is *restored*, not recomputed;
3. replaying interpretation only for the suffix inserted after the
   snapshot (Algorithm 2 resumes from its ``interpreted`` set);
4. re-adopting its own chain tip (consecutive sequence numbers, §7) and
   re-accumulating references to foreign blocks its next block still
   owes (Algorithm 1 line 8's invariant, reconstructed from the DAG).

The recovered server then continues gossiping exactly where it left
off; blocks disseminated while it was down arrive through the normal
pipeline and FWD chasing.  Theorem 5.1 across a crash — the integration
tests assert the recovered server's annotations are byte-identical to
an uninterrupted peer's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.gossip.recovery import adopt_chain_tip
from repro.storage.checkpoint import Checkpoint, install_checkpoint
from repro.types import BlockRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.shim.shim import Shim


@dataclass
class RecoveryReport:
    """What one restart-from-disk did."""

    checkpoint_seq: int | None = None
    blocks_recovered: int = 0
    skeletons_inserted: int = 0
    states_restored: int = 0
    blocks_replayed: int = 0
    indications_restored: int = 0
    chain_resumed: bool = False
    foreign_refs_readopted: int = 0
    #: Checkpoint refs dropped because neither the WAL nor the skeletons
    #: could rebuild their blocks (WAL suffix loss past the last record,
    #: possible without fsync).  The trimmed blocks re-arrive through
    #: normal gossip and are re-interpreted.
    refs_trimmed: int = 0
    #: The checkpoint recovery installed (so the shim can resume its
    #: pruning bookkeeping without re-reading the file), or ``None``.
    checkpoint: Checkpoint | None = field(default=None, repr=False)


def recover_shim_state(shim: "Shim") -> RecoveryReport:
    """Rebuild ``shim``'s DAG, interpreter and builder from its storage.

    Must run on a *fresh* shim (empty DAG, fresh interpreter) whose
    storage directory holds a previous incarnation's WAL/checkpoints.
    """
    storage = shim.storage
    if storage is None:
        raise StorageError("shim has no storage to recover from")
    report = RecoveryReport()
    checkpoint = storage.latest_checkpoint()
    blocks = storage.load_blocks()
    report.blocks_recovered = len(blocks)

    # A crash between flush and disk (no fsync) can lose a WAL suffix
    # beyond the final record, leaving the checkpoint referencing
    # blocks nothing can rebuild.  Recover the maximal consistent
    # durable prefix: trim the checkpoint to what WAL + skeletons can
    # reconstruct.  Lost records are a contiguous *tail* of the log, so
    # no surviving block references a trimmed one; the trimmed blocks
    # come back over gossip and are re-interpreted.
    if checkpoint is not None:
        available = {b.ref for b in blocks} | set(checkpoint.skeletons)
        checkpoint, report.refs_trimmed = _trim_to_available(
            checkpoint, available
        )

    # 1. DAG skeleton prefix (payload-pruned blocks whose WAL segments
    #    may already be gone), then the WAL in insertion order.
    if checkpoint is not None:
        report.checkpoint_seq = checkpoint.seq
        report.checkpoint = checkpoint
        # The suffix replay (step 3) may hit blocks referencing states
        # the previous incarnation had already released — carried in
        # the checkpoint for exactly this purpose.  The shim's
        # rehydrator reads ``_last_checkpoint``, so it must be in place
        # *before* interpretation resumes, not only after construction
        # finishes.
        shim._last_checkpoint = checkpoint
        report.skeletons_inserted = _insert_skeletons(shim, checkpoint)
    for block in blocks:
        if block.ref not in shim.dag:
            shim.dag.insert(block)

    # 2. Restore the interpreted prefix from the checkpoint.
    if checkpoint is not None:
        report.states_restored = install_checkpoint(
            checkpoint, shim.interpreter, shim.protocol
        )
        for label, indication, server, _ in checkpoint.events:
            if server == shim.server:
                shim.indications.append((label, indication))
                report.indications_restored += 1

    # 3. Replay only the suffix (new indications flow to the shim's
    #    handler exactly as during live interpretation).
    before = shim.interpreter.blocks_interpreted
    shim.interpreter.run()
    report.blocks_replayed = shim.interpreter.blocks_interpreted - before

    # 4. Resume the builder: own chain tip + still-unreferenced foreign
    #    blocks (in original insertion order, so the next sealed block
    #    references them exactly as the pre-crash block would have).
    report.chain_resumed = adopt_chain_tip(shim.gossip)
    report.foreign_refs_readopted = _readopt_foreign_refs(shim, blocks)
    return report


def _trim_to_available(
    checkpoint: Checkpoint, available: set[BlockRef]
) -> tuple[Checkpoint, int]:
    """Restrict a checkpoint to refs whose blocks are reconstructible.

    Only ``blocks_interpreted`` can be corrected exactly; the per-block
    contributions to the message/request counters are not recorded, so
    after a lossy recovery those metrics over-report by the trimmed
    blocks' re-interpreted work.  Counters are analysis aids, never
    inputs to protocol logic.
    """
    missing = checkpoint.refs - available
    if not missing:
        return checkpoint, 0
    refs = checkpoint.refs & available
    trimmed = Checkpoint(
        seq=checkpoint.seq,
        refs=frozenset(refs),
        states={r: v for r, v in checkpoint.states.items() if r in refs},
        active={r: v for r, v in checkpoint.active.items() if r in refs},
        released=checkpoint.released & refs,
        skeletons=checkpoint.skeletons,
        events=tuple(e for e in checkpoint.events if e[3] in refs),
        counters=dict(
            checkpoint.counters,
            blocks_interpreted=checkpoint.counters.get("blocks_interpreted", 0)
            - len(missing),
        ),
    )
    return trimmed, len(missing)


def _insert_skeletons(shim: "Shim", checkpoint: Checkpoint) -> int:
    """Insert payload-pruned stubs, topologically ordered among
    themselves (the pruned region is down-closed by construction).

    Kahn worklist over the skeleton subgraph — O(skeletons + edges),
    matching the interpreter's incremental scheduler, instead of a
    fixpoint rescan of the remaining set per inserted stub."""
    skeletons = checkpoint.skeletons
    pending: dict[BlockRef, int] = {}
    waiters: dict[BlockRef, list[BlockRef]] = {}
    ready: deque[BlockRef] = deque()
    for ref, skeleton in skeletons.items():
        blocking = 0
        for pred in dict.fromkeys(skeleton.preds):
            if pred in shim.dag:
                continue
            if pred not in skeletons:
                raise StorageError(
                    f"checkpoint skeleton {ref[:8]}… has a predecessor "
                    f"outside the pruned region and outside the DAG"
                )
            blocking += 1
            waiters.setdefault(pred, []).append(ref)
        if blocking:
            pending[ref] = blocking
        else:
            ready.append(ref)
    inserted = 0
    while ready:
        ref = ready.popleft()
        shim.dag.insert(skeletons[ref].to_block(ref))
        shim.dag.drop_payload(ref)
        inserted += 1
        for waiter in waiters.pop(ref, ()):
            pending[waiter] -= 1
            if pending[waiter] == 0:
                del pending[waiter]
                ready.append(waiter)
    if pending:
        raise StorageError(
            f"checkpoint skeletons are not down-closed: "
            f"{len(pending)} unresolvable"
        )
    return inserted


def _readopt_foreign_refs(shim: "Shim", blocks: list) -> int:
    """Re-add foreign blocks the pre-crash builder had accumulated but
    never sealed into a block (Algorithm 1 line 8, reconstructed)."""
    referenced: set[BlockRef] = set()
    for own in shim.dag.by_server(shim.server):
        referenced.update(own.preds)
    readopted = 0
    for block in blocks:
        if block.n == shim.server or block.ref in referenced:
            continue
        if shim.gossip.builder.add_pred(block.ref):
            readopted += 1
    return readopted
