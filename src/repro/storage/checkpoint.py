"""Interpreter checkpoints — durable snapshots of ``BlockState`` at a frontier.

The paper's offline-interpretation property (Lemma 4.2 / Theorem 5.1)
makes the whole interpreter state a pure function of the DAG, so a
crashed server *could* recover by re-interpreting everything from
genesis.  Checkpoints trade a little disk for a lot of restart time:
a snapshot of the interpreted set plus every still-referenceable
block's annotations lets recovery replay only the suffix that was
interpreted after the snapshot.

A checkpoint carries:

* ``refs``       — the interpreted set ``I`` at snapshot time;
* ``states``     — per-block annotation entries (see below) for every
  block still above the agreed GC horizon — annotations the
  interpreter holds in memory *plus* released ones carried forward
  from the previous checkpoint so late references can rehydrate them;
* ``active``     — the per-block active-label sets (Algorithm 2 line 7
  inputs for future children);
* ``released``   — refs whose in-memory states were pruned before the
  snapshot (their entries, when still present in ``states``, exist for
  rehydration only and are not restored to memory on recovery);
* ``skeletons``  — ``(n, k, preds, sigma, hz)`` for payload-pruned
  blocks (below the agreed horizon), enough to rebuild the DAG vertex
  (and keep its signature verifiable — ``sign`` covers ``ref(B)``,
  which the skeleton preserves) after the WAL segments holding the
  full blocks are deleted;
* ``events``     — the indication history, so a recovered shim reports
  the same ledger its user saw before the crash;
* ``counters``   — interpreter metrics, for continuity of analysis.

A state entry is **delta-encoded** along the builder's chain: because
Algorithm 2 copies ``PIs`` from the parent and mutates copy-on-write,
a block's annotation differs from its parent's exactly on the block's
*own-label set* (the labels it stepped).  Entries therefore store only
the owned instances plus ``own`` and a ``base`` pointer to the parent
entry; the full map is reassembled by walking the chain.  Entries whose
parent has no entry in the same checkpoint (chain start, or parent
skeletonized below the horizon) are materialized in full.  This makes
checkpoint size proportional to work done, not blocks × labels.

Files are written atomically (temp + rename) with a CRC-protected frame
and the canonical codec — no pickle, same guarantees as the WAL.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.dag import codec
from repro.dag.block import Block, parent_of
from repro.errors import CheckpointError
from repro.storage.state_codec import restore_process, snapshot_process
from repro.types import BlockRef, Label, ServerId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dag.blockdag import BlockDag
    from repro.interpret.interpreter import Interpreter
    from repro.protocols.base import ProtocolSpec

_FRAME = struct.Struct(">II")
_PREFIX = "ckpt-"
_SUFFIX = ".bin"


@dataclass(frozen=True)
class BlockSkeleton:
    """Payload-free reconstruction info for a pruned block.

    ``hz`` (the horizon claim) survives skeletonization: claims are the
    input to horizon agreement, which must stay recomputable from a
    recovered DAG."""

    n: ServerId
    k: int
    preds: tuple[BlockRef, ...]
    sigma: bytes
    hz: tuple[tuple[ServerId, int], ...] = ()

    def to_block(self, ref: BlockRef) -> Block:
        """Rebuild the payload-pruned stub carrying its original ref."""
        from repro.crypto.signatures import Signature

        stub = Block(
            n=self.n, k=self.k, preds=self.preds, rs=(),
            sigma=Signature(self.sigma), hz=self.hz,
        )
        # ``ref(B)`` covers the dropped ``rs``; pin the original so the
        # stub keeps its identity (and its signature stays verifiable).
        stub.__dict__["ref"] = ref
        return stub


@dataclass
class Checkpoint:
    """One durable snapshot of a server's interpretation progress."""

    seq: int
    refs: frozenset[BlockRef]
    states: dict[BlockRef, dict[str, Any]]
    active: dict[BlockRef, tuple[Label, ...]]
    released: frozenset[BlockRef] = frozenset()
    skeletons: dict[BlockRef, BlockSkeleton] = field(default_factory=dict)
    events: tuple[tuple[Label, Any, ServerId, BlockRef], ...] = ()
    counters: dict[str, int] = field(default_factory=dict)


def _parent_ref(dag: "BlockDag", ref: BlockRef) -> BlockRef | None:
    """The delta base for ``ref``'s state entry: the same parent the
    interpreter's copy-on-write used (the shared rule of
    :func:`repro.dag.block.parent_of` over the same deduplicated,
    reference-ordered predecessor list)."""
    block = dag.require(ref)
    parent = parent_of(block, dag.predecessors(block))
    return None if parent is None else parent.ref


def _merged_pis(
    states: dict[BlockRef, dict[str, Any]], ref: BlockRef
) -> dict[str, Any]:
    """A ref's full wire-form ``PIs``, reassembled along its delta chain
    (nearest-owner-wins, so the walk mirrors copy-on-write sharing)."""
    entry = states[ref]
    merged = dict(entry["pis"])
    base = entry.get("base")
    while base is not None:
        parent = states[base]
        for lbl, snapshot in parent["pis"].items():
            merged.setdefault(lbl, snapshot)
        base = parent.get("base")
    return merged


def _materialize_entry(
    states: dict[BlockRef, dict[str, Any]], ref: BlockRef
) -> dict[str, Any]:
    """A self-contained (``base=None``) copy of one delta entry —
    needed when its base is about to leave the checkpoint (skeletonized
    below the agreed horizon)."""
    entry = states[ref]
    return {**entry, "pis": _merged_pis(states, ref), "base": None}


def capture_checkpoint(
    seq: int,
    interpreter: "Interpreter",
    dag: "BlockDag",
    owner: ServerId | None = None,
    previous: "Checkpoint | None" = None,
) -> Checkpoint:
    """Snapshot an interpreter's current state into a checkpoint.

    ``owner`` bounds event-history growth: events for blocks pruned
    below the stable frontier are dropped *except* those indicated on
    behalf of the owning server — the user-visible ledger a recovered
    shim must re-report.  Without pruning (or without ``owner``) the
    full history is kept.

    ``previous`` enables the coordinated-GC carry-forward: annotations
    of blocks released from memory but still above the agreed horizon
    (payload intact) are copied from the previous checkpoint's entries,
    so late references can rehydrate them until the horizon agreement
    retires them for good.  Entries for payload-pruned blocks become
    skeletons, and any carried entry whose delta base was just retired
    is materialized in full first.
    """
    live = [
        ref for ref in interpreter.interpreted
        if ref not in interpreter.released
    ]
    carried = []
    if previous is not None:
        carried = [
            ref for ref in interpreter.released
            if ref in previous.states and not dag.payload_pruned(ref)
        ]
    planned = set(live) | set(carried)
    states: dict[BlockRef, dict[str, Any]] = {}
    active: dict[BlockRef, tuple[Label, ...]] = {}
    for ref in live:
        state = interpreter.state_of(ref)
        own = interpreter.own_labels(ref)
        parent = _parent_ref(dag, ref)
        base = parent if (parent is not None and parent in planned) else None
        labels = own if base is not None else state.pis.keys()
        # Raw slot read: ``state.ms`` would materialize the lazily
        # allocated buffers for every message-less block on every
        # checkpoint, defeating the laziness exactly where it pays.
        buffers = (
            state._ms.snapshot()
            if state._ms is not None
            else {"in": {}, "out": {}}
        )
        states[ref] = {
            "pis": {
                str(lbl): snapshot_process(state.pis[lbl])
                for lbl in sorted(labels)
            },
            "in": {str(lbl): tuple(sorted(msgs, key=codec.encode))
                   for lbl, msgs in buffers["in"].items()},
            "out": {str(lbl): tuple(sorted(msgs, key=codec.encode))
                    for lbl, msgs in buffers["out"].items()},
            "own": tuple(sorted(str(lbl) for lbl in own)),
            "base": base,
        }
        active[ref] = tuple(sorted(interpreter.active_labels(ref)))
    for ref in carried:
        entry = previous.states[ref]  # type: ignore[union-attr]
        if entry.get("base") is not None and entry["base"] not in planned:
            entry = _materialize_entry(previous.states, ref)  # type: ignore[union-attr]
        states[ref] = entry
        active[ref] = previous.active[ref]  # type: ignore[union-attr]
    skeletons = {
        ref: BlockSkeleton(
            n=block.n, k=block.k, preds=block.preds,
            sigma=bytes(block.sigma), hz=block.hz,
        )
        for ref in dag.pruned_payloads
        for block in (dag.require(ref),)
    }
    events = tuple(
        (event.label, event.indication, event.server, event.block_ref)
        for event in interpreter.events
        if event.block_ref not in interpreter.released or event.server == owner
    )
    return Checkpoint(
        seq=seq,
        refs=frozenset(interpreter.interpreted),
        states=states,
        active=active,
        released=frozenset(interpreter.released),
        skeletons=skeletons,
        events=events,
        counters={
            "blocks_interpreted": interpreter.blocks_interpreted,
            "messages_delivered": interpreter.messages_delivered,
            "messages_materialized": interpreter.messages_materialized,
            "request_steps": interpreter.request_steps,
            "rehydrated": interpreter.rehydrated,
            "chain_runs": interpreter.chain_runs,
            "chain_blocks": interpreter.chain_blocks,
        },
    )


def restore_block_state(
    checkpoint: Checkpoint,
    protocol: "ProtocolSpec",
    servers: "tuple[ServerId, ...]",
    ref: BlockRef,
) -> "tuple[Any, frozenset[Label], frozenset[Label]] | None":
    """Rehydrate one block's annotation from a covering checkpoint.

    Returns ``(BlockState, active labels, own labels)`` — the triple
    the interpreter needs to resume reading the block as a predecessor
    — or ``None`` when the checkpoint no longer holds the entry (the
    agreed horizon retired it; referencing it is condemned instead).
    """
    from repro.interpret.instance import BlockState

    entry = checkpoint.states.get(ref)
    if entry is None:
        return None
    state = BlockState()
    for lbl_str, snapshot in _merged_pis(checkpoint.states, ref).items():
        state.pis[Label(lbl_str)] = restore_process(protocol, servers, snapshot)
    for lbl_str, messages in entry["in"].items():
        state.ms.add_in(Label(lbl_str), messages)
    for lbl_str, messages in entry["out"].items():
        state.ms.add_out(Label(lbl_str), messages)
    active = frozenset(Label(l) for l in checkpoint.active.get(ref, ()))
    own = frozenset(Label(l) for l in entry.get("own", ()))
    return state, active, own


def install_checkpoint(
    checkpoint: Checkpoint,
    interpreter: "Interpreter",
    protocol: "ProtocolSpec",
) -> int:
    """Load a checkpoint into a *fresh* interpreter.

    The DAG must already contain every checkpointed ref (recovery
    rebuilds it from skeletons + WAL first).  Returns the number of
    block states restored.
    """
    from repro.interpret.instance import BlockState
    from repro.interpret.interpreter import IndicationEvent

    if interpreter.interpreted:
        raise CheckpointError("refusing to install into a non-fresh interpreter")
    missing = [ref for ref in checkpoint.refs if ref not in interpreter.dag]
    if missing:
        raise CheckpointError(
            f"checkpoint references {len(missing)} blocks absent from the "
            f"rebuilt DAG (first: {missing[0][:8]}…)"
        )
    # Delta entries reference their parent's entry; walk each builder's
    # chain bottom-up so a child's base is restored (or at least
    # merge-able at the wire level) before the child.  Entries for
    # *released* refs are carried for rehydration only — they are not
    # restored to memory, preserving the memory bound across a restart.
    order = sorted(
        checkpoint.states,
        key=lambda r: (
            interpreter.dag.require(r).n,
            interpreter.dag.require(r).k,
            r,
        ),
    )
    restored = 0
    for ref in order:
        if ref in checkpoint.released:
            continue
        entry = checkpoint.states[ref]
        base = entry.get("base")
        state = BlockState()
        if base is not None and base in interpreter._states:
            # Share the base's restored instances, exactly like the
            # live copy-on-write discipline (Algorithm 2 line 4).
            state.pis = dict(interpreter._states[base].pis)
            pis_wire = entry["pis"]
        else:
            pis_wire = _merged_pis(checkpoint.states, ref)
        for lbl_str, snapshot in pis_wire.items():
            state.pis[Label(lbl_str)] = restore_process(
                protocol, interpreter.servers, snapshot
            )
        for lbl_str, messages in entry["in"].items():
            state.ms.add_in(Label(lbl_str), messages)
        for lbl_str, messages in entry["out"].items():
            state.ms.add_out(Label(lbl_str), messages)
        interpreter._states[ref] = state
        interpreter._own_labels[ref] = frozenset(
            Label(l) for l in entry.get("own", ())
        )
        labels = frozenset(Label(l) for l in checkpoint.active.get(ref, ()))
        # Route through the interpreter's intern pool so restored
        # annotations share active-set objects with live ones (the
        # line-7 gather's identity fast path).
        interpreter._active_labels[ref] = interpreter._active_pool.setdefault(
            labels, labels
        )
        restored += 1
    interpreter.interpreted |= set(checkpoint.refs)
    interpreter.released |= set(checkpoint.released)
    interpreter.events.extend(
        IndicationEvent(label, indication, server, block_ref)
        for (label, indication, server, block_ref) in checkpoint.events
    )
    for name, value in checkpoint.counters.items():
        setattr(interpreter, name, value)
    # The interpreted set just grew behind the scheduler's back: pending
    # in-degree counts computed while the DAG was being rebuilt are now
    # stale.  One linear resync and the ready queue holds exactly the
    # post-checkpoint suffix (incremental mode; no-op otherwise).
    interpreter.resync_schedule()
    return restored


# -- persistence ---------------------------------------------------------------


class CheckpointManager:
    """Writes, lists and loads checkpoint files in one directory.

    ``retain`` bounds disk use: after a successful write, all but the
    newest ``retain`` checkpoints are deleted.  Writes are atomic
    (temp file + rename), so a crash mid-checkpoint leaves the previous
    checkpoint intact and recovery simply uses it.
    """

    def __init__(self, directory: str | Path, retain: int = 2) -> None:
        if retain < 1:
            raise ValueError(f"must retain at least one checkpoint, got {retain}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self.writes = 0
        self.bytes_written = 0

    def _path(self, seq: int) -> Path:
        return self.directory / f"{_PREFIX}{seq:08d}{_SUFFIX}"

    def sequences(self) -> list[int]:
        """Sequence numbers of stored checkpoints, oldest first."""
        result = []
        for path in self.directory.glob(f"{_PREFIX}*{_SUFFIX}"):
            try:
                result.append(int(path.name[len(_PREFIX) : -len(_SUFFIX)]))
            except ValueError:
                continue
        return sorted(result)

    def next_seq(self) -> int:
        """Sequence number the next written checkpoint should carry."""
        sequences = self.sequences()
        return (sequences[-1] + 1) if sequences else 1

    def write(self, checkpoint: Checkpoint) -> Path:
        """Persist a checkpoint atomically; prunes old ones after."""
        payload = codec.encode(_to_wire(checkpoint))
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        path = self._path(checkpoint.seq)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(frame)
        tmp.replace(path)
        self.writes += 1
        self.bytes_written += len(frame)
        for seq in self.sequences()[: -self.retain]:
            self._path(seq).unlink(missing_ok=True)
        return path

    def load(self, seq: int) -> Checkpoint:
        """Read and verify one checkpoint."""
        data = self._path(seq).read_bytes()
        if len(data) < _FRAME.size:
            raise CheckpointError(f"checkpoint {seq} truncated")
        length, crc = _FRAME.unpack_from(data, 0)
        payload = data[_FRAME.size : _FRAME.size + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            raise CheckpointError(f"checkpoint {seq} failed its integrity check")
        return _from_wire(codec.decode(payload))

    def latest(self) -> Checkpoint | None:
        """The newest *intact* checkpoint, or ``None``.

        A corrupt or torn newest file (crash mid-rename is impossible,
        but disks happen) falls back to the next-newest.
        """
        for seq in reversed(self.sequences()):
            try:
                return self.load(seq)
            except CheckpointError:
                continue
        return None


def _to_wire(checkpoint: Checkpoint) -> dict[str, Any]:
    return {
        "seq": checkpoint.seq,
        "refs": sorted(checkpoint.refs),
        "states": {str(k): v for k, v in checkpoint.states.items()},
        "active": {str(k): tuple(str(l) for l in v) for k, v in checkpoint.active.items()},
        "released": sorted(checkpoint.released),
        "skeletons": {
            str(ref): (
                str(s.n),
                s.k,
                tuple(str(p) for p in s.preds),
                s.sigma,
                tuple((str(sv), k) for sv, k in s.hz),
            )
            for ref, s in checkpoint.skeletons.items()
        },
        "events": tuple(
            (str(label), indication, str(server), str(block_ref))
            for (label, indication, server, block_ref) in checkpoint.events
        ),
        "counters": checkpoint.counters,
    }


def _from_wire(wire: dict[str, Any]) -> Checkpoint:
    return Checkpoint(
        seq=wire["seq"],
        refs=frozenset(BlockRef(r) for r in wire["refs"]),
        states={BlockRef(k): v for k, v in wire["states"].items()},
        active={
            BlockRef(k): tuple(Label(l) for l in v)
            for k, v in wire["active"].items()
        },
        released=frozenset(BlockRef(r) for r in wire["released"]),
        skeletons={
            BlockRef(ref): BlockSkeleton(
                n=ServerId(n),
                k=k,
                preds=tuple(BlockRef(p) for p in preds),
                sigma=sigma,
                hz=tuple((ServerId(sv), ck) for sv, ck in hz),
            )
            for ref, (n, k, preds, sigma, hz) in wire["skeletons"].items()
        },
        events=tuple(
            (Label(label), indication, ServerId(server), BlockRef(block_ref))
            for (label, indication, server, block_ref) in wire["events"]
        ),
        counters=dict(wire["counters"]),
    )
