"""Message-compression accounting — experiment CLM-COMPRESS.

The paper's central efficiency claim (§1, §4, §5): interpreting a block
DAG *compresses messages to the point of omitting them*.  The messages
in ``Ms[out, ℓ]`` / ``Ms[in, ℓ]`` "have never been sent over the
network — they are locally computed, functional results of the calls
receive(m)" (§4).  The only things on the wire are blocks.

This module quantifies that: for a cluster run it reports how many
protocol messages the interpretation materialized, how many envelopes
(blocks + FWDs) actually crossed the wire, and the resulting
compression ratios, per server and aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.cluster import Cluster


@dataclass(frozen=True)
class CompressionReport:
    """Compression outcome of one cluster run.

    ``messages_materialized`` counts protocol messages computed during
    interpretation at the first correct server (every correct server
    computes the same set — Lemma 4.2 — so aggregating across servers
    would double count).  ``wire_envelopes``/``wire_bytes`` count what
    the whole cluster put on the network.
    """

    n_servers: int
    n_labels: int
    messages_materialized: int
    messages_delivered: int
    wire_envelopes: int
    wire_bytes: int
    blocks: int

    @property
    def messages_per_envelope(self) -> float:
        """Protocol messages conveyed per wire envelope — the paper's
        'compression': > 1 means each block carried the meaning of
        several protocol messages."""
        if self.wire_envelopes == 0:
            return 0.0
        return self.messages_materialized / self.wire_envelopes

    @property
    def bytes_per_message(self) -> float:
        """Wire bytes paid per protocol message conveyed."""
        if self.messages_materialized == 0:
            return 0.0
        return self.wire_bytes / self.messages_materialized

    @property
    def omitted_fraction(self) -> float:
        """Fraction of protocol messages that never touched the wire —
        1 - envelopes/materialized, floored at 0.  With many parallel
        instances this approaches 1 (the 'for free' claim)."""
        if self.messages_materialized == 0:
            return 0.0
        return max(0.0, 1.0 - self.wire_envelopes / self.messages_materialized)

    def as_row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "n": self.n_servers,
            "labels": self.n_labels,
            "materialized": self.messages_materialized,
            "wire envs": self.wire_envelopes,
            "msgs/env": round(self.messages_per_envelope, 2),
            "omitted": f"{self.omitted_fraction:.1%}",
            "B/msg": round(self.bytes_per_message, 1),
        }


def compression_report(cluster: Cluster, n_labels: int) -> CompressionReport:
    """Build the compression report for a finished cluster run."""
    first = next(iter(cluster.shims.values()))
    interpreter = first.interpreter
    return CompressionReport(
        n_servers=len(cluster.servers),
        n_labels=n_labels,
        messages_materialized=interpreter.messages_materialized,
        messages_delivered=interpreter.messages_delivered,
        wire_envelopes=cluster.sim.metrics.messages,
        wire_bytes=cluster.sim.metrics.bytes,
        blocks=len(first.dag),
    )
