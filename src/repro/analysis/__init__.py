"""Measurement & analysis tooling for the reproduction experiments.

* :mod:`repro.analysis.metrics` — cost models and counters pulled from
  the simulator, gossip, interpreter and signature layers.
* :mod:`repro.analysis.compression` — the message-compression accounting
  behind CLM-COMPRESS (messages materialized vs. sent).
* :mod:`repro.analysis.reporting` — plain-text tables/series the
  benchmark harness prints (the reproduction's "figures").
"""

from repro.analysis.compression import CompressionReport, compression_report
from repro.analysis.metrics import CostSummary, collect_cluster_costs, collect_direct_costs
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "CompressionReport",
    "CostSummary",
    "collect_cluster_costs",
    "collect_direct_costs",
    "compression_report",
    "format_series",
    "format_table",
]
