"""Plain-text tables and series — the reproduction's "figures".

The paper is a theory paper; its evaluation artefacts are worked
figures plus efficiency claims.  The benchmark harness regenerates them
as text tables (rows of dicts) and series (x/y pairs).  Keeping the
renderer dependency-free means benchmark output lands in CI logs and
EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    title: str | None = None,
) -> str:
    """Render rows (dicts sharing keys) as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(
                str(row.get(column, "")).ljust(widths[column]) for column in columns
            )
        )
    return "\n".join(lines)


def format_series(
    points: Iterable[tuple[object, object]],
    x_name: str = "x",
    y_name: str = "y",
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table with a crude
    ASCII bar for the y magnitude — the closest honest analogue of a
    figure in text output."""
    points = list(points)
    numeric = [float(y) for _, y in points] if points else []
    peak = max(numeric, default=0.0)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_name:>12} | {y_name:>14} |")
    for (x, y), value in zip(points, numeric):
        bar = "#" * (int(30 * value / peak) if peak > 0 else 0)
        lines.append(f"{str(x):>12} | {str(y):>14} | {bar}")
    return "\n".join(lines)


def shape_check(
    description: str,
    holds: bool,
) -> str:
    """One line of the 'shape' verdicts EXPERIMENTS.md records:
    the qualitative relationships (who wins, what grows) the
    reproduction promises to preserve."""
    status = "OK " if holds else "FAIL"
    return f"[{status}] {description}"
