"""Cost accounting across both runtimes.

Pulls together the counters every layer already keeps — wire messages
and bytes (simulator), signature operations (:class:`CountingScheme`),
blocks and FWD traffic (gossip), materialized messages (interpreter) —
into one comparable :class:`CostSummary` per run.  The benchmark
harness prints these side by side for the embedding and the direct
baseline; the paper's claims are about the *ratios*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signatures import CountingScheme
from repro.runtime.cluster import Cluster
from repro.runtime.direct import DirectRuntime


@dataclass
class CostSummary:
    """One run's aggregate costs."""

    runtime: str
    wire_messages: int = 0
    wire_bytes: int = 0
    signatures_signed: int = 0
    signatures_verified: int = 0
    protocol_messages_materialized: int = 0
    protocol_messages_delivered: int = 0
    blocks: int = 0
    indications: int = 0
    virtual_time: float = 0.0
    # Persistence costs (zero unless the run used the storage subsystem).
    wal_bytes: int = 0
    wal_appends: int = 0
    checkpoints_written: int = 0
    checkpoint_age_blocks: int = 0
    pruned_blocks: int = 0
    pruned_wal_segments: int = 0
    # Coordinated-GC health (zero on the direct baseline and on runs
    # without horizon GC): blocks stalled below a pruned predecessor,
    # annotations rebuilt from a covering checkpoint, and arrivals
    # condemned by the agreed-horizon validity rule.
    below_horizon: int = 0
    rehydrated: int = 0
    condemned_below_horizon: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def signature_ops(self) -> int:
        """Total sign + verify operations."""
        return self.signatures_signed + self.signatures_verified

    def as_row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        row: dict[str, object] = {
            "runtime": self.runtime,
            "wire msgs": self.wire_messages,
            "wire bytes": self.wire_bytes,
            "sig ops": self.signature_ops(),
            "materialized": self.protocol_messages_materialized,
            "blocks": self.blocks,
            "indications": self.indications,
            "t_virt": round(self.virtual_time, 2),
            "below horizon": self.below_horizon,
            "rehydrated": self.rehydrated,
            "condemned": self.condemned_below_horizon,
        }
        if self.wal_appends:
            row["wal bytes"] = self.wal_bytes
            row["ckpts"] = self.checkpoints_written
            row["pruned"] = self.pruned_blocks
        return row


def collect_cluster_costs(cluster: Cluster, name: str = "block-dag") -> CostSummary:
    """Snapshot the costs of a block DAG cluster run.

    Signature counters require the cluster to have been built with a
    :class:`CountingScheme`; otherwise they read 0.
    """
    summary = CostSummary(runtime=name)
    summary.wire_messages = cluster.sim.metrics.messages
    summary.wire_bytes = cluster.sim.metrics.bytes
    scheme = cluster.keyring.scheme
    if isinstance(scheme, CountingScheme):
        summary.signatures_signed = scheme.sign_count
        summary.signatures_verified = scheme.verify_count
    interp = cluster.interpreter_metrics()
    summary.protocol_messages_materialized = interp["messages_materialized"]
    summary.protocol_messages_delivered = interp["messages_delivered"]
    gc_health = cluster.interpreter_snapshot()
    summary.below_horizon = gc_health.below_horizon
    summary.rehydrated = gc_health.rehydrated
    summary.condemned_below_horizon = gc_health.condemned_below_horizon
    summary.blocks = cluster.total_blocks()
    summary.indications = sum(
        len(shim.indications) for shim in cluster.shims.values()
    )
    summary.virtual_time = cluster.sim.now
    summary.extra["rounds"] = float(cluster.rounds_run)
    storage = cluster.storage_metrics()
    if storage["wal_appends"]:
        summary.wal_bytes = int(storage["wal_bytes"])
        summary.wal_appends = int(storage["wal_appends"])
        summary.checkpoints_written = int(storage["checkpoints_written"])
        summary.checkpoint_age_blocks = int(storage["checkpoint_age_max"])
        summary.pruned_blocks = int(storage["payloads_dropped"])
        summary.pruned_wal_segments = int(storage["wal_segments_dropped"])
        summary.extra["states_released"] = storage["states_released"]
        summary.extra["blocks_recovered"] = storage["blocks_recovered"]
        summary.extra["blocks_replayed"] = storage["blocks_replayed"]
    return summary


def collect_direct_costs(direct: DirectRuntime, name: str = "direct") -> CostSummary:
    """Snapshot the costs of a direct-messaging baseline run."""
    summary = CostSummary(runtime=name)
    summary.wire_messages = direct.sim.metrics.messages
    summary.wire_bytes = direct.sim.metrics.bytes
    scheme = direct.keyring.scheme
    if isinstance(scheme, CountingScheme):
        summary.signatures_signed = scheme.sign_count
        summary.signatures_verified = scheme.verify_count
    sent = direct.total_messages_sent()
    self_deliveries = sum(
        node.metrics.self_deliveries for node in direct.nodes.values()
    )
    # In the baseline every protocol message *is* materialized on the
    # wire (self-deliveries excepted).
    summary.protocol_messages_materialized = sent + self_deliveries
    summary.protocol_messages_delivered = sum(
        node.metrics.messages_received for node in direct.nodes.values()
    ) + self_deliveries
    summary.indications = sum(
        len(events) for events in direct.trace().indications.values()
    )
    summary.virtual_time = direct.sim.now
    return summary


def ratio(dag: CostSummary, direct: CostSummary) -> dict[str, float]:
    """Direct-to-DAG cost ratios (> 1 means the embedding is cheaper).

    The paper's qualitative claims translate to: ``wire_messages`` and
    ``signature_ops`` ratios grow with the number of parallel instances
    (messages/signatures are amortized over blocks), while
    ``materialized`` stays ≈ 1 (the embedding computes the same protocol
    messages, it just does not ship them).
    """
    def _safe(a: float, b: float) -> float:
        return a / b if b else float("inf")

    return {
        "wire_messages": _safe(direct.wire_messages, dag.wire_messages),
        "wire_bytes": _safe(direct.wire_bytes, dag.wire_bytes),
        "signature_ops": _safe(direct.signature_ops(), dag.signature_ops()),
        "materialized": _safe(
            direct.protocol_messages_materialized,
            dag.protocol_messages_materialized,
        ),
    }
