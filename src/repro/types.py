"""Core type aliases and small value types shared across the library.

The paper's notation maps onto these types as follows:

* ``Srvrs``  — a set of :class:`ServerId`
* ``L``      — a set of :class:`Label`
* ``ref(B)`` — a :class:`BlockRef` (hex-encoded content hash)
* ``Rqsts``  — protocol-specific request objects (see ``repro.protocols.base``)
* ``Inds``   — protocol-specific indication objects

Keeping these as plain, hashable value types keeps every layer of the
stack (DAG, gossip, interpretation) trivially serializable and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

#: Identifier of a server (the paper's ``n`` field of a block, and the
#: elements of ``Srvrs``).  Plain strings keep logs and test assertions
#: readable ("s1", "s2", ...).
ServerId = NewType("ServerId", str)

#: Label distinguishing parallel protocol instances (the paper's ``ℓ ∈ L``).
Label = NewType("Label", str)

#: Content-hash reference to a block (the paper's ``ref(B)``), hex encoded.
BlockRef = NewType("BlockRef", str)

#: Sequence number of a block (the paper's ``k ∈ N0``).
SeqNum = int


def server_id(name: str) -> ServerId:
    """Construct a :data:`ServerId` from a plain string."""
    return ServerId(name)


def label(name: str) -> Label:
    """Construct a :data:`Label` from a plain string."""
    return Label(name)


def make_servers(n: int, prefix: str = "s") -> list[ServerId]:
    """Return ``n`` distinct server identifiers ``s1 .. sN``.

    A convenience used pervasively by tests, examples and benchmarks.
    """
    if n < 1:
        raise ValueError(f"need at least one server, got {n}")
    return [ServerId(f"{prefix}{i}") for i in range(1, n + 1)]


def quorum_size(n: int) -> int:
    """Byzantine quorum ``2f + 1`` for ``n = 3f + 1`` servers.

    For arbitrary ``n`` this returns ``ceil((n + f + 1) / 2)`` specialised
    to the standard ``f = (n - 1) // 3`` fault budget, i.e. the smallest
    set guaranteed to intersect any other such set in a correct server.
    """
    return 2 * max_faults(n) + 1


def max_faults(n: int) -> int:
    """Maximum tolerated byzantine servers ``f`` for ``n`` servers (``n ⩾ 3f+1``)."""
    if n < 1:
        raise ValueError(f"need at least one server, got {n}")
    return (n - 1) // 3


def _register_with_codec(cls: type) -> None:
    """Register a marker-base subclass for codec decoding.

    Registration must happen at class-definition (module-import) time,
    not first-encode time: a process recovering from another process's
    WAL or checkpoint decodes these classes before it ever encodes one.
    Imported lazily — ``repro.dag`` imports this module.
    """
    from repro.dag.codec import register_dataclass

    register_dataclass(cls)


@dataclass(frozen=True, slots=True)
class Request:
    """Marker base class for protocol requests (the paper's ``r ∈ Rqsts``).

    Concrete protocols subclass this with frozen dataclasses so requests
    are hashable, comparable and canonically encodable.  Subclasses
    self-register with the codec at definition time, so requests stored
    as bytes (the key-value substrate, the storage WAL) decode back to
    the right class in any process that imported the protocol.
    """

    def __init_subclass__(cls, **kwargs: object) -> None:
        # Explicit two-arg super: ``slots=True`` recreates the class,
        # invalidating the ``__class__`` cell zero-arg super needs.
        super(Request, cls).__init_subclass__(**kwargs)
        _register_with_codec(cls)


@dataclass(frozen=True, slots=True)
class Indication:
    """Marker base class for protocol indications (the paper's ``i ∈ Inds``).

    Subclasses self-register with the codec, like :class:`Request`."""

    def __init_subclass__(cls, **kwargs: object) -> None:
        # Explicit two-arg super: ``slots=True`` recreates the class,
        # invalidating the ``__class__`` cell zero-arg super needs.
        super(Indication, cls).__init_subclass__(**kwargs)
        _register_with_codec(cls)
