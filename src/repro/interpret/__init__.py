"""Interpreting a protocol on a block DAG (paper §4, Algorithm 2).

* :mod:`repro.interpret.order` — the total message order ``<_M``.
* :mod:`repro.interpret.buffers` — per-block message buffers
  ``Ms[in/out, ℓ]``.
* :mod:`repro.interpret.instance` — per-block process-instance state
  ``PIs`` and snapshot helpers for equivalence checks (Lemma 4.2).
* :mod:`repro.interpret.interpreter` — Algorithm 2 itself.
"""

from repro.interpret.buffers import MessageBuffers
from repro.interpret.instance import BlockState, snapshot_instance
from repro.interpret.interpreter import IndicationEvent, Interpreter

__all__ = [
    "BlockState",
    "IndicationEvent",
    "Interpreter",
    "MessageBuffers",
    "snapshot_instance",
]
