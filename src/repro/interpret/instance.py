"""Per-block interpretation state — the paper's ``B.PIs`` and ``B.Ms``.

Every interpreted block is annotated with (1) the process-instance map
of its *builder* — ``B.PIs[ℓ]`` is the state of ``P(ℓ, B.n)`` after
everything up to and including ``B`` — and (2) the message buffers.
The paper's footnote 1 notes an equivalent global-state representation;
we keep the per-block form because it makes the information flow of
Algorithm 2 literal and lets tests compare annotations directly
(Lemma 4.2).

``snapshot_instance`` canonicalizes a process instance's state for
equality assertions: two instances are behaviourally equal when their
plain-data attributes match (the context carries only static identity
plus drained effect queues).
"""

from __future__ import annotations

import copy
from typing import Any

from repro.interpret.buffers import MessageBuffers
from repro.protocols.base import (
    INTERNAL_STATE_ATTRS,
    Context,
    ProcessInstance,
)
from repro.types import Label


class BlockState:
    """Annotation of one interpreted block: ``PIs`` and ``Ms``.

    ``pis`` maps labels to the *builder's* process instances; it is
    populated lazily (the paper's 'in an implementation, we would only
    start process instances for ℓ after receiving the first message or
    request', §4) and copied from the parent block on interpretation
    (Algorithm 2 line 4).
    """

    __slots__ = ("pis", "_ms")

    def __init__(self) -> None:
        self.pis: dict[Label, ProcessInstance] = {}
        #: Lazily materialized: most blocks in a steady-state run carry
        #: neither requests nor deliveries, and four dict allocations
        #: per block were measurable on the interpretation hot path.
        #: The interpreter reads the raw slot; everyone else goes
        #: through the property.
        self._ms: MessageBuffers | None = None

    @property
    def ms(self) -> MessageBuffers:
        """The ``Ms`` buffers, created on first touch."""
        buffers = self._ms
        if buffers is None:
            buffers = self._ms = MessageBuffers()
        return buffers

    def copy_pis_from(self, parent: "BlockState") -> None:
        """``B.PIs ≔ copy B.parent.PIs`` (Algorithm 2 line 4), in the
        paper's literal copy-everything form.

        A deep copy: sibling blocks of an equivocating builder must not
        share mutable state — the fork splits the simulated server into
        two 'versions' (§4, byzantine discussion).  The interpreter
        itself realizes line 4 copy-on-write instead (pointer-sharing
        plus :meth:`~repro.protocols.base.ProcessInstance.fork` on
        first step); this method is the oracle semantics both must stay
        observationally equal to.
        """
        self.pis = copy.deepcopy(parent.pis)


def snapshot_instance(instance: ProcessInstance) -> dict[str, Any]:
    """Canonical state snapshot of a process instance.

    Returns all instance attributes except the context, plus the
    context's static identity.  Deep-copied so the snapshot is
    insulated from further execution.  Used by Lemma 4.2 tests to
    assert that two servers' interpretations agree block-by-block.
    """
    state: dict[str, Any] = {}
    attrs: dict[str, Any] = {}
    if hasattr(instance, "__dict__"):
        attrs.update(instance.__dict__)
    for klass in type(instance).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot not in INTERNAL_STATE_ATTRS and hasattr(instance, slot):
                attrs.setdefault(slot, getattr(instance, slot))
    for name, value in attrs.items():
        # Generation stamps / cell tables are copy-on-write bookkeeping,
        # not protocol state: two behaviourally equal instances may
        # carry arbitrarily different stamps.
        if name in INTERNAL_STATE_ATTRS:
            continue
        state[name] = copy.deepcopy(value)
    ctx = instance.ctx
    state["__ctx__"] = {
        "self_id": ctx.self_id,
        "label": ctx.label,
        "servers": ctx.servers,
    }
    state["__class__"] = type(instance).__qualname__
    return state


def fresh_context_like(ctx: Context) -> Context:
    """A new, empty context with the same static identity (test helper)."""
    return Context(ctx.servers, ctx.self_id, ctx.label)
