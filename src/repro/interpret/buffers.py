"""Per-block message buffers — the paper's ``Ms[in, ℓ]`` / ``Ms[out, ℓ]``.

Each interpreted block carries, per protocol instance label, the set of
messages its builder's process *received at* this block and the set it
*emitted at* this block (§4).  The buffers use set semantics because
Algorithm 2 lines 9 and 11 are set unions: an identical message
reachable through two predecessors (possible only via equivocating
builders) is delivered once, and duplicate emissions collapse.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.interpret.order import ordered
from repro.protocols.base import Message
from repro.types import Label


class MessageBuffers:
    """The ``Ms`` annotation of one block: in/out message sets per label."""

    __slots__ = ("_in", "_out")

    def __init__(self) -> None:
        self._in: dict[Label, set[Message]] = {}
        self._out: dict[Label, set[Message]] = {}

    # -- writes (Algorithm 2 lines 6, 9, 11) -------------------------------------

    def add_in(self, label: Label, messages: Iterable[Message]) -> None:
        """``Ms[in, ℓ] ∪= messages`` (line 9)."""
        self._in.setdefault(label, set()).update(messages)

    def add_out(self, label: Label, messages: Iterable[Message]) -> None:
        """``Ms[out, ℓ] ∪= messages`` (lines 6, 11)."""
        self._out.setdefault(label, set()).update(messages)

    # -- reads ----------------------------------------------------------------

    def incoming(self, label: Label) -> list[Message]:
        """``Ms[in, ℓ]`` ordered by ``<_M`` (line 10)."""
        return ordered(self._in.get(label, ()))

    def outgoing(self, label: Label) -> list[Message]:
        """``Ms[out, ℓ]`` ordered by ``<_M`` (for line 9 at successor blocks)."""
        return ordered(self._out.get(label, ()))

    def outgoing_set(self, label: Label) -> Iterable[Message]:
        """``Ms[out, ℓ]`` unordered — the line 9 gather at successor
        blocks unions these into a set and sorts *once* at line 10, so
        pre-sorting here (which encodes every message for its ``<_M``
        key) would be pure hot-path waste.  Callers must not mutate the
        returned collection."""
        return self._out.get(label, ())

    def outgoing_for(self, label: Label, receiver: object) -> list[Message]:
        """``{m ∈ Ms[out, ℓ] | m.receiver = receiver}`` — the line 9 filter."""
        return [m for m in self.outgoing(label) if m.receiver == receiver]

    def labels_in(self) -> Iterator[Label]:
        """Labels with any received message."""
        return iter(self._in)

    def labels_out(self) -> Iterator[Label]:
        """Labels with any emitted message."""
        return iter(self._out)

    def in_count(self) -> int:
        """Total received messages across labels (metrics)."""
        return sum(len(v) for v in self._in.values())

    def out_count(self) -> int:
        """Total emitted messages across labels (metrics)."""
        return sum(len(v) for v in self._out.values())

    def snapshot(self) -> dict[str, dict[Label, frozenset[Message]]]:
        """Immutable view for equivalence assertions (Lemma 4.2)."""
        return {
            "in": {label: frozenset(msgs) for label, msgs in self._in.items()},
            "out": {label: frozenset(msgs) for label, msgs in self._out.items()},
        }
