"""Per-block message buffers — the paper's ``Ms[in, ℓ]`` / ``Ms[out, ℓ]``.

Each interpreted block carries, per protocol instance label, the set of
messages its builder's process *received at* this block and the set it
*emitted at* this block (§4).  The buffers use set semantics because
Algorithm 2 lines 9 and 11 are set unions: an identical message
reachable through two predecessors (possible only via equivocating
builders) is delivered once, and duplicate emissions collapse.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.interpret.order import ordered
from repro.protocols.base import Message
from repro.types import Label


class MessageBuffers:
    """The ``Ms`` annotation of one block: in/out message sets per label.

    Alongside the canonical out-sets, the buffers maintain a
    *receiver index* (``label -> receiver -> messages``): Algorithm 2's
    line-9 gather runs once per (successor, label) pair over every
    predecessor, so filtering ``m.receiver = B.n`` by scanning the full
    out-set made each emitted message be re-examined by every
    referencing block.  The index is derived state — rebuilt by
    ``add_out`` wherever the buffers are reconstructed (checkpoint
    restore, rehydration) and never serialized."""

    __slots__ = ("_in", "_out", "_out_rcv")

    def __init__(self) -> None:
        self._in: dict[Label, set[Message]] = {}
        self._out: dict[Label, set[Message]] = {}
        self._out_rcv: dict[Label, dict[object, set[Message]]] = {}

    # -- writes (Algorithm 2 lines 6, 9, 11) -------------------------------------

    def add_in(self, label: Label, messages: Iterable[Message]) -> None:
        """``Ms[in, ℓ] ∪= messages`` (line 9)."""
        self._in.setdefault(label, set()).update(messages)

    def add_out(self, label: Label, messages: Iterable[Message]) -> None:
        """``Ms[out, ℓ] ∪= messages`` (lines 6, 11)."""
        self._out.setdefault(label, set()).update(messages)
        by_receiver = self._out_rcv.setdefault(label, {})
        for message in messages:
            bucket = by_receiver.get(message.receiver)
            if bucket is None:
                by_receiver[message.receiver] = {message}
            else:
                bucket.add(message)

    # -- reads ----------------------------------------------------------------

    def incoming(self, label: Label) -> list[Message]:
        """``Ms[in, ℓ]`` ordered by ``<_M`` (line 10)."""
        return ordered(self._in.get(label, ()))

    def outgoing(self, label: Label) -> list[Message]:
        """``Ms[out, ℓ]`` ordered by ``<_M`` (for line 9 at successor blocks)."""
        return ordered(self._out.get(label, ()))

    def outgoing_to(self, label: Label, receiver: object) -> Iterable[Message]:
        """``{m ∈ Ms[out, ℓ] | m.receiver = receiver}`` unordered, via
        the receiver index — the line 9 gather without scanning the
        other receivers' messages.  Callers must not mutate the
        returned collection.  (The interpreter's hot loop inlines this
        body over the raw ``_out_rcv`` slot; keep the two in sync.)"""
        by_receiver = self._out_rcv.get(label)
        if by_receiver is None:
            return ()
        return by_receiver.get(receiver, ())

    def outgoing_for(self, label: Label, receiver: object) -> list[Message]:
        """``{m ∈ Ms[out, ℓ] | m.receiver = receiver}`` — the line 9 filter."""
        return [m for m in self.outgoing(label) if m.receiver == receiver]

    def labels_in(self) -> Iterator[Label]:
        """Labels with any received message."""
        return iter(self._in)

    def labels_out(self) -> Iterator[Label]:
        """Labels with any emitted message."""
        return iter(self._out)

    def in_count(self) -> int:
        """Total received messages across labels (metrics)."""
        return sum(len(v) for v in self._in.values())

    def out_count(self) -> int:
        """Total emitted messages across labels (metrics)."""
        return sum(len(v) for v in self._out.values())

    def snapshot(self) -> dict[str, dict[Label, frozenset[Message]]]:
        """Immutable view for equivalence assertions (Lemma 4.2)."""
        return {
            "in": {label: frozenset(msgs) for label, msgs in self._in.items()},
            "out": {label: frozenset(msgs) for label, msgs in self._out.items()},
        }
