"""Algorithm 2 — interpreting a deterministic protocol ``P`` on a block DAG.

The interpreter walks the DAG in any eligibility-respecting order and,
per block ``B``:

1. copies the builder's process-instance map from the parent block
   (line 4);
2. applies every request ``(ℓ, r) ∈ B.rs`` to the builder's process for
   ``ℓ``, unioning the triggered messages into ``B.Ms[out, ℓ]``
   (lines 5–6);
3. for every label with a request in ``B``'s strict causal past
   (line 7), collects from each direct predecessor's out-buffer the
   messages addressed to ``B.n`` (lines 8–9) and feeds them to the
   builder's process in ``<_M`` order, unioning the responses into the
   out-buffer (lines 10–11);
4. marks ``B`` interpreted (line 12) and surfaces any indications the
   process raised (lines 13–14).

Everything is a pure function of the DAG: by Lemma 4.2 the interleaving
of eligible blocks is irrelevant and any two servers annotate every
block identically.  Tests exercise this directly by permuting
schedules.

State copying is copy-on-write at process-instance granularity: block
states share untouched instances with their ancestors, and an instance
is deep-copied the first time a given block steps it.  Observable
annotations are identical to the paper's copy-everything formulation
(any block that would mutate shared state copies first), including the
state *split* at equivocation forks — two children of the same parent
each copy before stepping.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.dag.block import Block
from repro.dag.blockdag import BlockDag
from repro.dag.traversal import eligible_frontier
from repro.errors import PrunedStateError, SimulationError
from repro.interpret.instance import BlockState
from repro.interpret.order import ordered
from repro.protocols.base import Message, ProcessInstance, ProtocolSpec, StepResult
from repro.types import BlockRef, Indication, Label, ServerId


@dataclass(frozen=True)
class IndicationEvent:
    """An indication raised during interpretation (Algorithm 2 line 14):
    instance ``label`` indicated ``indication`` on behalf of ``server``
    (= ``B.n``) while interpreting block ``block_ref``."""

    label: Label
    indication: Indication
    server: ServerId
    block_ref: BlockRef


#: Scheduler callback: pick the next block from the eligible frontier.
ChooseFn = Callable[[list[Block]], Block]


class Interpreter:
    """Executes Algorithm 2 over a (growing) block DAG.

    The interpreter never mutates the DAG; it may be re-run as gossip
    inserts blocks, resuming from its ``interpreted`` set.  It is
    deliberately ignorant of *which* server is running it — the point
    of Lemma 4.2 — but callers (the shim) filter indications by
    ``event.server``.

    Parameters
    ----------
    dag:
        The block DAG ``G`` to interpret (shared with gossip, read-only
        here).
    protocol:
        The black box ``P``.
    servers:
        The global server set ``Srvrs`` (process instances are simulated
        for each of them).
    on_indication:
        Optional callback fired for every indication event, in order.
    """

    def __init__(
        self,
        dag: BlockDag,
        protocol: ProtocolSpec,
        servers: Sequence[ServerId],
        on_indication: Callable[[IndicationEvent], None] | None = None,
    ) -> None:
        self.dag = dag
        self.protocol = protocol
        self.servers = tuple(servers)
        self.on_indication = on_indication
        self.interpreted: set[BlockRef] = set()
        #: Refs whose states were pruned below the stable frontier; they
        #: stay in ``interpreted`` but their annotations are gone.
        self.released: set[BlockRef] = set()
        self.events: list[IndicationEvent] = []
        self._states: dict[BlockRef, BlockState] = {}
        self._active_labels: dict[BlockRef, frozenset[Label]] = {}
        # Metrics backing the compression experiments (CLM-COMPRESS).
        self.blocks_interpreted = 0
        self.messages_delivered = 0
        self.messages_materialized = 0
        self.request_steps = 0
        #: Blocks permanently uninterpretable because a predecessor's
        #: state was pruned (see :meth:`eligible`).
        self.below_horizon = 0

    # -- queries ------------------------------------------------------------

    def is_interpreted(self, ref: BlockRef) -> bool:
        """``I[B]`` of Algorithm 2 line 2."""
        return ref in self.interpreted

    def state_of(self, ref: BlockRef) -> BlockState:
        """The ``PIs``/``Ms`` annotation of an interpreted block."""
        state = self._states.get(ref)
        if state is None:
            if ref in self.released:
                raise PrunedStateError(
                    f"annotation pruned below the stable frontier: {ref[:8]}…"
                )
            raise SimulationError(f"block not interpreted yet: {ref[:8]}…")
        return state

    def eligible(self) -> list[Block]:
        """Blocks currently satisfying ``eligible(B)`` (line 3).

        A block whose direct predecessor was pruned below the stable
        frontier can never be interpreted (its inputs are gone); such
        blocks — only a byzantine builder can produce them once GC's
        full-reference rule holds — are excluded rather than raised on,
        and counted in :attr:`below_horizon`.
        """
        frontier = eligible_frontier(self.dag, self.interpreted)
        if not self.released:
            return frontier
        usable = [
            b for b in frontier
            if not any(p in self.released for p in b.preds)
        ]
        self.below_horizon = len(frontier) - len(usable)
        return usable

    def active_labels(self, ref: BlockRef) -> frozenset[Label]:
        """Labels with a request in the block's strict causal past — the
        set of line 7."""
        labels = self._active_labels.get(ref)
        if labels is None:
            if ref in self.released:
                raise PrunedStateError(
                    f"annotation pruned below the stable frontier: {ref[:8]}…"
                )
            raise SimulationError(f"block not interpreted yet: {ref[:8]}…")
        return labels

    # -- pruning (storage subsystem) -------------------------------------------

    def release_state(self, ref: BlockRef) -> None:
        """Drop an interpreted block's annotation (``PIs``/``Ms``/active
        labels) to reclaim memory.  The block stays ``interpreted``; the
        caller (:mod:`repro.storage.gc`) guarantees a durable checkpoint
        holds the annotation and that no future interpretation needs it.
        """
        if ref not in self.interpreted:
            raise SimulationError(
                f"cannot release a block that was never interpreted: {ref[:8]}…"
            )
        self._states.pop(ref, None)
        self._active_labels.pop(ref, None)
        self.released.add(ref)

    # -- execution ------------------------------------------------------------

    def run(self, choose: ChooseFn | None = None) -> list[IndicationEvent]:
        """Interpret until no block is eligible; returns new events.

        ``choose`` picks among eligible blocks (default: canonical
        reference order).  By Lemma 4.2 the choice cannot change any
        annotation — property tests rely on exactly this entry point to
        verify that.
        """
        start = len(self.events)
        while True:
            frontier = self.eligible()
            if not frontier:
                break
            block = choose(frontier) if choose is not None else frontier[0]
            self.interpret_block(block)
        return self.events[start:]

    def interpret_block(self, block: Block) -> list[IndicationEvent]:
        """Interpret one eligible block (Algorithm 2 lines 4–14)."""
        if block.ref in self.interpreted:
            raise SimulationError(f"block already interpreted: {block!r}")
        if block.ref not in self.dag.refs:
            raise SimulationError(f"block not in DAG: {block!r}")
        preds = self.dag.predecessors(block)
        missing = [p for p in preds if p.ref not in self.interpreted]
        if missing:
            raise SimulationError(
                f"block not eligible, uninterpreted predecessors: {missing!r}"
            )
        pruned = [p for p in preds if p.ref in self.released]
        if pruned:
            raise PrunedStateError(
                f"cannot interpret {block!r}: predecessor annotations "
                f"pruned below the stable frontier: "
                f"{[p.ref[:8] for p in pruned]}"
            )

        state = BlockState()
        parent = self._parent_of(block, preds)
        if parent is not None:
            # Line 4 — share the parent's instances copy-on-write; every
            # mutation below copies first.
            state.pis = dict(self._states[parent.ref].pis)
        owned: set[Label] = set()

        new_events: list[IndicationEvent] = []

        # Lines 5–6: requests carried by this block, in list order.
        for request_label, request in block.rs:
            result = self._step(
                state, owned, block, request_label, lambda pi: pi.step_request(request)
            )
            self.request_steps += 1
            state.ms.add_out(request_label, result.messages)
            self.messages_materialized += len(result.messages)
            new_events.extend(
                self._emit(block, request_label, result.indications)
            )

        # Line 7: labels with a request strictly in the past.
        active = frozenset().union(
            *(
                self._active_labels[p.ref] | {lbl for (lbl, _) in p.rs}
                for p in preds
            )
        ) if preds else frozenset()

        for message_label in sorted(active):
            # Lines 8–9: gather messages addressed to B.n from direct
            # predecessors' out-buffers.
            incoming: set[Message] = set()
            for pred in preds:
                pred_state = self._states[pred.ref]
                incoming.update(
                    m
                    for m in pred_state.ms.outgoing(message_label)
                    if m.receiver == block.n
                )
            if not incoming:
                continue
            state.ms.add_in(message_label, incoming)
            # Lines 10–11: feed in <_M order; union the responses.
            for message in ordered(incoming):
                result = self._step(
                    state,
                    owned,
                    block,
                    message_label,
                    lambda pi: pi.step_message(message),
                )
                self.messages_delivered += 1
                state.ms.add_out(message_label, result.messages)
                self.messages_materialized += len(result.messages)
                new_events.extend(
                    self._emit(block, message_label, result.indications)
                )

        # Line 12.
        self._states[block.ref] = state
        self._active_labels[block.ref] = active
        self.interpreted.add(block.ref)
        self.blocks_interpreted += 1
        return new_events

    # -- internals ------------------------------------------------------------

    def _parent_of(self, block: Block, preds: list[Block]) -> Block | None:
        """The unique parent (same builder, sequence k-1) among preds."""
        if block.is_genesis:
            return None
        for pred in preds:
            if pred.n == block.n and pred.k == block.k - 1:
                return pred
        return None

    def _step(
        self,
        state: BlockState,
        owned: set[Label],
        block: Block,
        label: Label,
        action: Callable[[ProcessInstance], StepResult],
    ) -> StepResult:
        """Apply ``action`` to the builder's process for ``label``,
        copying shared state first (copy-on-write discipline)."""
        instance = state.pis.get(label)
        if instance is None:
            instance = self.protocol.create(self.servers, block.n, label)
            state.pis[label] = instance
            owned.add(label)
        elif label not in owned:
            instance = copy.deepcopy(instance)
            state.pis[label] = instance
            owned.add(label)
        return action(instance)

    def _emit(
        self,
        block: Block,
        label: Label,
        indications: Iterable[Indication],
    ) -> list[IndicationEvent]:
        """Record indications (lines 13–14) and fire the callback."""
        events = []
        for indication in indications:
            event = IndicationEvent(label, indication, block.n, block.ref)
            self.events.append(event)
            events.append(event)
            if self.on_indication is not None:
                self.on_indication(event)
        return events
