"""Algorithm 2 — interpreting a deterministic protocol ``P`` on a block DAG.

The interpreter walks the DAG in any eligibility-respecting order and,
per block ``B``:

1. copies the builder's process-instance map from the parent block
   (line 4);
2. applies every request ``(ℓ, r) ∈ B.rs`` to the builder's process for
   ``ℓ``, unioning the triggered messages into ``B.Ms[out, ℓ]``
   (lines 5–6);
3. for every label with a request in ``B``'s strict causal past
   (line 7), collects from each direct predecessor's out-buffer the
   messages addressed to ``B.n`` (lines 8–9) and feeds them to the
   builder's process in ``<_M`` order, unioning the responses into the
   out-buffer (lines 10–11);
4. marks ``B`` interpreted (line 12) and surfaces any indications the
   process raised (lines 13–14).

Everything is a pure function of the DAG: by Lemma 4.2 the interleaving
of eligible blocks is irrelevant and any two servers annotate every
block identically.  Tests exercise this directly by permuting
schedules.

Eligibility is tracked **incrementally**: the interpreter keeps a
pending-in-degree count per uninterpreted block (how many distinct
predecessors are still uninterpreted) and a ready queue of blocks whose
count has dropped to zero.  Inserting a block costs O(|preds|);
interpreting one costs O(out-degree) scheduler work — so steady-state
gossip does O(edges) total scheduling instead of rescanning the whole
DAG per insertion.  The original scan-the-world frontier
(:func:`~repro.dag.traversal.eligible_frontier`) survives behind
``incremental=False`` as a debug/verification mode; property tests
assert both modes produce byte-identical annotations.

State copying is copy-on-write at **two** granularities.  At instance
granularity, block states share untouched instances with their
ancestors and an instance is copied the first time a given block steps
it.  At container granularity (``cow=True``, the default), that
per-block copy is a structural :meth:`~repro.protocols.base.ProcessInstance.fork`
— O(fields), sharing every unmutated container with the ancestor —
and the protocol's own write barrier copies only the containers a step
actually touches.  ``cow=False`` restores the original
``copy.deepcopy`` ownership copy and is kept as the executable oracle:
property tests assert both modes produce byte-identical annotations
and event traces, the same convention as ``incremental=False``.
Observable annotations are identical to the paper's copy-everything
formulation either way (any block that would mutate shared state
copies first), including the state *split* at equivocation forks — two
children of the same parent each copy before stepping.

``run()`` additionally drains **builder chains in batches**: when
interpreting a block leaves exactly one newly ready block (the shape a
gossip catch-up drain produces — one builder's chain unblocking link
by link), the loop follows it directly instead of going through the
ready heap.  The schedule is unchanged (a singleton ready set has only
one canonical choice), but per-block scheduler work drops and the
storage layer piggybacks on the same boundaries to frame one WAL
record per drained chain.
"""

from __future__ import annotations

import copy
import heapq
import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.dag.block import Block, parent_of

# The sanctioned wall-clock conduit (lint: no-wall-clock): interpret-block
# timings feed HotPathTimers only, never trace identity.
from repro.obs.timers import perf_counter
from repro.obs.trace import NULL_RECORDER
from repro.dag.blockdag import BlockDag
from repro.dag.traversal import eligible_frontier
from repro.errors import PrunedStateError, SimulationError
from repro.interpret.instance import BlockState
from repro.interpret.order import ordered
from repro.protocols.base import Message, ProcessInstance, ProtocolSpec, StepResult
from repro.types import BlockRef, Indication, Label, ServerId


@dataclass(frozen=True)
class IndicationEvent:
    """An indication raised during interpretation (Algorithm 2 line 14):
    instance ``label`` indicated ``indication`` on behalf of ``server``
    (= ``B.n``) while interpreting block ``block_ref``."""

    label: Label
    indication: Indication
    server: ServerId
    block_ref: BlockRef


#: Scheduler callback: pick the next block from the eligible frontier.
ChooseFn = Callable[[list[Block]], Block]

#: Shared empty label set (avoids one allocation per no-step block).
_EMPTY_LABELS: frozenset[Label] = frozenset()

#: Rehydration callback: reconstruct a released block's annotation from
#: durable storage — ``(state, active labels, own labels)``, or ``None``
#: when the covering checkpoint no longer holds it.
RehydrateFn = Callable[
    [BlockRef], "tuple[BlockState, frozenset[Label], frozenset[Label]] | None"
]


class Interpreter:
    """Executes Algorithm 2 over a (growing) block DAG.

    The interpreter never mutates the DAG; it may be re-run as gossip
    inserts blocks, resuming from its ``interpreted`` set.  It is
    deliberately ignorant of *which* server is running it — the point
    of Lemma 4.2 — but callers (the shim) filter indications by
    ``event.server``.

    Parameters
    ----------
    dag:
        The block DAG ``G`` to interpret (shared with gossip, read-only
        here).
    protocol:
        The black box ``P``.
    servers:
        The global server set ``Srvrs`` (process instances are simulated
        for each of them).
    on_indication:
        Optional callback fired for every indication event, in order.
    incremental:
        ``True`` (default) uses the event-driven ready-queue scheduler:
        blocks already in ``dag`` are indexed at construction and every
        later insertion is picked up through the DAG's insert-listener
        hook.  ``False`` falls back to rescanning the whole DAG for the
        eligible frontier on every :meth:`eligible` call — the original
        (O(N) per interpreted block) behavior, kept as a verification
        oracle for tests and benchmarks.
    cow:
        ``True`` (default) makes :meth:`_step`'s ownership copy a
        structurally-shared :meth:`~repro.protocols.base.ProcessInstance.fork`
        (O(fields); mutation copies only touched containers through the
        protocol's write barrier).  ``False`` restores the
        ``copy.deepcopy`` discipline — the executable oracle the
        cow-vs-oracle property tests compare against, mirroring the
        ``incremental=False`` convention.
    """

    def __init__(
        self,
        dag: BlockDag,
        protocol: ProtocolSpec,
        servers: Sequence[ServerId],
        on_indication: Callable[[IndicationEvent], None] | None = None,
        incremental: bool = True,
        cow: bool = True,
        tracer: object | None = None,
        timers: object | None = None,
    ) -> None:
        self.dag = dag
        self.protocol = protocol
        self.servers = tuple(servers)
        self.on_indication = on_indication
        self.incremental = incremental
        self.cow = cow
        #: Flight recorder (``repro.obs``) — the no-op recorder when
        #: tracing is off, so the per-block emission site costs one
        #: attribute check.  ``timers`` (wall-clock histograms) stays
        #: outside trace identity.
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.timers = timers
        self.interpreted: set[BlockRef] = set()
        #: Refs whose states were pruned below the stable frontier; they
        #: stay in ``interpreted`` but their annotations are gone.
        self.released: set[BlockRef] = set()
        self.events: list[IndicationEvent] = []
        #: Optional hook reconstructing a released predecessor's
        #: annotation from the covering checkpoint (set by the shim when
        #: durable storage is configured).  With it, a late reference to
        #: a locally-pruned block *rehydrates* instead of stalling.
        self.rehydrator: RehydrateFn | None = None
        self._states: dict[BlockRef, BlockState] = {}
        self._active_labels: dict[BlockRef, frozenset[Label]] = {}
        #: Intern pool for active-label sets: one frozenset object per
        #: distinct set.  Steady-state blocks whose predecessors all
        #: carry the same active set then share one object — the
        #: line-7 gather detects that by identity and skips building
        #: any temporary at all.  Bounded by the number of distinct
        #: active sets ever seen (≤ blocks interpreted), and a net
        #: memory *saving*: annotations share instead of each holding
        #: their own copy.
        self._active_pool: dict[frozenset[Label], frozenset[Label]] = {}
        #: Per-block set of labels the block itself stepped (the
        #: ``owned`` set of :meth:`interpret_block`) — with copy-on-write
        #: state sharing this is the block's *delta* over its parent,
        #: which checkpoints persist to delta-encode annotations and
        #: rehydration uses to rebuild a pruned chain's ``PIs``.
        self._own_labels: dict[BlockRef, frozenset[Label]] = {}
        # Incremental scheduler state (unused when incremental=False):
        # per-uninterpreted-block count of uninterpreted distinct preds,
        # the ready set plus a canonical-order heap over it (stale heap
        # entries are skipped lazily), and the refs known to either side.
        self._pending: dict[BlockRef, int] = {}
        self._ready: set[BlockRef] = set()
        self._ready_heap: list[BlockRef] = []
        self._tracked: set[BlockRef] = set()
        #: Blocks permanently uninterpretable because a direct
        #: predecessor's state was pruned (see :meth:`eligible`).
        self._horizon: set[BlockRef] = set()
        # Metrics backing the compression experiments (CLM-COMPRESS).
        # All of them commit atomically with line 12 (the interpreted
        # mark): a protocol step raising mid-block leaves every counter
        # exactly where it was, so counters never include work of a
        # block that was not marked interpreted.
        self.blocks_interpreted = 0
        self.messages_delivered = 0
        self.messages_materialized = 0
        self.request_steps = 0
        #: Same-builder chain runs the batched drain followed without
        #: touching the ready heap, and the blocks they covered.
        self.chain_runs = 0
        self.chain_blocks = 0
        #: Released annotations reconstructed from the covering
        #: checkpoint on demand (coordinated-GC subsystem).
        self.rehydrated = 0
        if incremental:
            self.resync_schedule()
            # Register weakly: throwaway interpreters built over a
            # long-lived DAG (offline verification, analysis) must not
            # be kept alive by the DAG's listener list.  The wrapper
            # unsubscribes itself once its interpreter is collected.
            self_ref = weakref.ref(self)

            def _forward(block: Block) -> None:
                interpreter = self_ref()
                if interpreter is not None:
                    # Inline of notify_inserted (incremental is known
                    # True here): one call less on the per-insert path.
                    interpreter._track(block)
                else:
                    dag.remove_insert_listener(_forward)

            dag.add_insert_listener(_forward)

    # -- queries ------------------------------------------------------------

    def is_interpreted(self, ref: BlockRef) -> bool:
        """``I[B]`` of Algorithm 2 line 2."""
        return ref in self.interpreted

    @property
    def below_horizon(self) -> int:
        """Distinct blocks permanently uninterpretable because a direct
        predecessor's annotation was pruned below the stable frontier.

        Tracked as a set rather than recomputed per call, so the count
        is stable across repeated :meth:`eligible` calls and does not
        decay to garbage once pruning stops."""
        return len(self._horizon)

    @property
    def resident_states(self) -> int:
        """Annotations currently held in memory — the quantity the
        coordinated-GC benchmark bounds."""
        return len(self._states)

    def state_of(self, ref: BlockRef) -> BlockState:
        """The ``PIs``/``Ms`` annotation of an interpreted block."""
        state = self._states.get(ref)
        if state is None:
            if ref in self.released:
                raise PrunedStateError(
                    f"annotation pruned below the stable frontier: {ref[:8]}…"
                )
            raise SimulationError(f"block not interpreted yet: {ref[:8]}…")
        return state

    def eligible(self) -> list[Block]:
        """Blocks currently satisfying ``eligible(B)`` (line 3), in
        canonical (reference) order.

        A block whose direct predecessor was pruned below the stable
        frontier can never be interpreted (its inputs are gone); such
        blocks — only a byzantine builder can produce them once GC's
        full-reference rule holds — are excluded rather than raised on,
        and counted in :attr:`below_horizon`.
        """
        if self.incremental:
            # The ready set *is* the eligible frontier: pruned-pred
            # blocks were diverted to the horizon at ready time.
            return sorted(
                (self.dag.require(ref) for ref in self._ready),
                key=lambda b: b.ref,
            )
        frontier = eligible_frontier(self.dag, self.interpreted)
        if not self.released:
            return frontier
        usable = []
        for block in frontier:
            if self._restore_released_preds(block):
                usable.append(block)
            else:
                self._horizon.add(block.ref)
        return usable

    def active_labels(self, ref: BlockRef) -> frozenset[Label]:
        """Labels with a request in the block's strict causal past — the
        set of line 7."""
        labels = self._active_labels.get(ref)
        if labels is None:
            if ref in self.released:
                raise PrunedStateError(
                    f"annotation pruned below the stable frontier: {ref[:8]}…"
                )
            raise SimulationError(f"block not interpreted yet: {ref[:8]}…")
        return labels

    def own_labels(self, ref: BlockRef) -> frozenset[Label]:
        """Labels the block itself stepped — its copy-on-write delta
        over the parent's ``PIs`` (empty for pure-gather blocks)."""
        labels = self._own_labels.get(ref)
        if labels is None:
            if ref in self.released:
                raise PrunedStateError(
                    f"annotation pruned below the stable frontier: {ref[:8]}…"
                )
            raise SimulationError(f"block not interpreted yet: {ref[:8]}…")
        return labels

    # -- incremental scheduling ------------------------------------------------

    def notify_inserted(self, block: Block) -> None:
        """Index a newly inserted block (registered as a DAG insert
        listener in incremental mode).

        O(|preds|): counts the block's uninterpreted distinct
        predecessors; a count of zero sends it straight to the ready
        queue (or to the below-horizon set if a predecessor's state was
        already pruned)."""
        if self.incremental:
            self._track(block)

    def resync_schedule(self) -> None:
        """Rebuild the scheduler's pending/ready structures from the
        DAG and the current ``interpreted`` set.

        Needed when the interpreted set changes outside
        :meth:`interpret_block` — installing a recovery checkpoint marks
        a whole prefix interpreted at once, invalidating the pending
        counts computed while the DAG was being rebuilt.  One O(N + E)
        pass; a no-op in rescan mode."""
        self._pending.clear()
        self._ready.clear()
        self._ready_heap.clear()
        self._tracked.clear()
        self._horizon.clear()
        if not self.incremental:
            return
        for block in self.dag:
            self._track(block)

    def _track(self, block: Block) -> None:
        ref = block.ref
        if ref in self._tracked:
            return
        self._tracked.add(ref)
        if ref in self.interpreted:
            return
        # Count *distinct* uninterpreted predecessors without building a
        # set of all of them — runs once per insertion, and the missing
        # set is almost always empty or tiny.
        interpreted = self.interpreted
        missing: set[BlockRef] | None = None
        for p in block.preds:
            if p not in interpreted:
                if missing is None:
                    missing = {p}
                else:
                    missing.add(p)
        if missing:
            self._pending[ref] = len(missing)
        else:
            self._make_ready(block)

    def _make_ready(self, block: Block) -> None:
        """All predecessors interpreted: queue for interpretation, or
        divert below the horizon when a predecessor's state is gone
        (and, with a rehydrator, cannot be reconstructed).

        The heap is maintained lazily: a singleton ready set needs no
        order (``run()`` takes it directly), so entries are pushed only
        once a second block is ready — at which point the whole ready
        set is (re-)pushed, restoring the ``heap ⊇ ready`` invariant
        the multi-element pop path relies on.  Duplicate pushes are
        harmless: a popped entry no longer in ``ready`` is skipped as
        stale."""
        if self._restore_released_preds(block):
            ready = self._ready
            ready.add(block.ref)
            if len(ready) == 2:
                heap = self._ready_heap
                for ref in ready:
                    heapq.heappush(heap, ref)
            elif len(ready) > 2:
                heapq.heappush(self._ready_heap, block.ref)
        else:
            self._horizon.add(block.ref)

    def _restore_released_preds(self, block: Block) -> bool:
        """Ensure every released direct predecessor of ``block`` has its
        annotation back in memory; ``True`` when interpretation can
        proceed.  Rehydration is per-predecessor: partially restored
        states are harmless (the block is diverted anyway and the
        restored prefix can be re-released by the next pruning pass)."""
        if not self.released:
            return True  # nothing is ever released on the fast path
        released = [p for p in set(block.preds) if p in self.released]
        if not released:
            return True
        if self.rehydrator is None:
            return False
        return all(self._rehydrate(ref) for ref in released)

    def _rehydrate(self, ref: BlockRef) -> bool:
        """Pull one released annotation back from the covering
        checkpoint.  The ref leaves ``released`` — it is a first-class
        resident annotation again, and a later pruning pass may release
        it anew once the usual rules hold."""
        assert self.rehydrator is not None
        restored = self.rehydrator(ref)
        if restored is None:
            return False
        state, active, own = restored
        self._states[ref] = state
        self._active_labels[ref] = self._active_pool.setdefault(active, active)
        self._own_labels[ref] = own
        self.released.discard(ref)
        self.rehydrated += 1
        return True

    def _on_interpreted(self, ref: BlockRef) -> None:
        """Propagate one interpretation to the ready queue: O(out-degree)."""
        self._tracked.add(ref)
        self._ready.discard(ref)
        self._pending.pop(ref, None)
        for succ_ref in self.dag.graph.successors_view(ref):
            count = self._pending.get(succ_ref)
            if count is None:
                continue
            if count > 1:
                self._pending[succ_ref] = count - 1
            else:
                del self._pending[succ_ref]
                self._make_ready(self.dag.require(succ_ref))

    # -- pruning (storage subsystem) -------------------------------------------

    def release_state(self, ref: BlockRef) -> None:
        """Drop an interpreted block's annotation (``PIs``/``Ms``/active
        labels) to reclaim memory.  The block stays ``interpreted``; the
        caller (:mod:`repro.storage.gc`) guarantees a durable checkpoint
        holds the annotation and that no future interpretation needs it.
        """
        if ref not in self.interpreted:
            raise SimulationError(
                f"cannot release a block that was never interpreted: {ref[:8]}…"
            )
        self._states.pop(ref, None)
        self._active_labels.pop(ref, None)
        self._own_labels.pop(ref, None)
        self.released.add(ref)
        if self.incremental:
            # Any already-ready successor lost an input it would read;
            # divert it below the horizon (its stale heap entry is
            # skipped lazily).  Pending successors are checked against
            # ``released`` when they become ready.
            for succ_ref in self.dag.graph.successors(ref):
                if succ_ref in self._ready:
                    self._ready.discard(succ_ref)
                    self._horizon.add(succ_ref)

    # -- execution ------------------------------------------------------------

    def run(self, choose: ChooseFn | None = None) -> list[IndicationEvent]:
        """Interpret until no block is eligible; returns new events.

        ``choose`` picks among eligible blocks (default: canonical
        reference order).  By Lemma 4.2 the choice cannot change any
        annotation — property tests rely on exactly this entry point to
        verify that.
        """
        start = len(self.events)
        if self.incremental and choose is None:
            # Hot path: pop the canonically smallest ready ref straight
            # off the heap — the exact schedule the frontier rescan
            # produced (it always picked the smallest eligible ref),
            # without materializing the frontier each step.  A
            # singleton ready set (the steady-state gossip shape) is
            # trivially the smallest choice and skips the heap
            # entirely; its stale entry is cleared with the rest once
            # the queue drains.
            ready = self._ready
            require = self.dag.require
            while ready:
                if len(ready) == 1:
                    for ref in ready:
                        break
                else:
                    ref = heapq.heappop(self._ready_heap)
                    if ref not in ready:
                        continue  # stale: interpreted or diverted meanwhile
                block = require(ref)
                popped = True
                chain_len = 1
                while True:
                    try:
                        # Ready ⇒ eligible: all guards of
                        # interpret_block hold by scheduler invariant
                        # (release_state diverts ready successors), so
                        # go straight to the execution body.
                        self._execute(block, self.dag.predecessors(block))
                        # Scheduler propagation lives out here (not in
                        # _execute) so the Algorithm-2 core stays a
                        # pure function of the DAG — the handler-purity
                        # rule certifies it with an empty effect set.
                        self._on_interpreted(block.ref)
                    except BaseException:
                        # Keep heap ⊇ ready even when a protocol step
                        # blows up mid-run, so a later run() still sees
                        # the block.  Followed (never-popped) blocks
                        # still have their original heap entry.
                        if popped:
                            heapq.heappush(self._ready_heap, block.ref)
                        raise
                    # Chain-batched drain: when interpreting this block
                    # left exactly one ready block, it is the only
                    # canonical choice — follow it directly instead of
                    # round-tripping through the heap.  The schedule is
                    # identical to the rescan oracle's; a gossip
                    # catch-up drain (one builder's chain unblocking
                    # link by link) rides this path end to end.
                    if len(ready) != 1:
                        break
                    for next_ref in ready:
                        break
                    next_block = require(next_ref)
                    if next_block.n == block.n and next_block.k == block.k + 1:
                        chain_len += 1
                    else:
                        if chain_len >= 2:
                            self.chain_runs += 1
                            self.chain_blocks += chain_len
                        chain_len = 1
                    block = next_block
                    popped = False
                if chain_len >= 2:
                    self.chain_runs += 1
                    self.chain_blocks += chain_len
            # Entries the singleton/chain fast paths never popped are
            # all stale now that the queue is drained.
            self._ready_heap.clear()
            return self.events[start:]
        while True:
            frontier = self.eligible()
            if not frontier:
                break
            block = choose(frontier) if choose is not None else frontier[0]
            self.interpret_block(block)
        return self.events[start:]

    def interpret_block(self, block: Block) -> list[IndicationEvent]:
        """Interpret one eligible block (Algorithm 2 lines 4–14).

        Checks eligibility first — this is the public entry point for
        callers driving their own schedules (tests, the rescan mode).
        The incremental hot loop calls :meth:`_execute` directly: a
        block popped from the ready queue has these guards discharged
        by construction."""
        if block.ref in self.interpreted:
            raise SimulationError(f"block already interpreted: {block!r}")
        if block.ref not in self.dag:
            raise SimulationError(f"block not in DAG: {block!r}")
        preds = self.dag.predecessors(block)
        missing = [p for p in preds if p.ref not in self.interpreted]
        if missing:
            raise SimulationError(
                f"block not eligible, uninterpreted predecessors: {missing!r}"
            )
        if not self._restore_released_preds(block):
            pruned = [p for p in preds if p.ref in self.released]
            raise PrunedStateError(
                f"cannot interpret {block!r}: predecessor annotations "
                f"pruned below the stable frontier: "
                f"{[p.ref[:8] for p in pruned]}"
            )
        events = self._execute(block, preds)
        if self.incremental:
            self._on_interpreted(block.ref)
        return events

    def _execute(
        self, block: Block, preds: list[Block]
    ) -> list[IndicationEvent]:
        """Algorithm 2 lines 4–14 proper, eligibility already assured."""
        timers = self.timers
        if timers is not None:
            _started = perf_counter()
        state = BlockState()
        parent = parent_of(block, preds)
        if parent is not None:
            # Line 4 — share the parent's instances copy-on-write; every
            # mutation below copies first.
            state.pis = dict(self._states[parent.ref].pis)
        owned: set[Label] = set()

        new_events: list[IndicationEvent] = []
        # Work counters accumulate locally and commit with line 12
        # below: a protocol step raising mid-block must not leave
        # counters counting work of a block never marked interpreted.
        request_steps = 0
        delivered = 0
        materialized = 0

        # Lines 5–6: requests carried by this block, in list order.
        for request_label, request in block.rs:
            result = self._step(
                state, owned, block, request_label, lambda pi: pi.step_request(request)
            )
            request_steps += 1
            state.ms.add_out(request_label, result.messages)
            materialized += len(result.messages)
            new_events.extend(
                self._emit(block, request_label, result.indications)
            )

        # Line 7: labels with a request strictly in the past.  Active
        # sets are interned — one frozenset object per distinct set —
        # so the steady-state shape (every predecessor carrying the
        # same active set, no request for a new label) is recognized by
        # object identity and reuses the shared set without building a
        # single temporary.  This runs for every block, on the hottest
        # path there is.
        active_labels = self._active_labels
        base: frozenset[Label] = _EMPTY_LABELS
        gathered: set[Label] | None = None
        first = True
        for p in preds:
            fs = active_labels[p.ref]
            if first:
                base = fs
                first = False
            elif fs is not base:
                if gathered is None:
                    gathered = set(base)
                gathered.update(fs)
        for p in preds:
            for lbl, _ in p.rs:
                if gathered is None:
                    if lbl in base:
                        continue
                    gathered = set(base)
                gathered.add(lbl)
        if gathered is None:
            active = base
        else:
            frozen = frozenset(gathered)
            active = self._active_pool.setdefault(frozen, frozen)

        states = self._states
        pred_states = [states[p.ref] for p in preds]
        receiver = block.n
        # The canonical label order only matters when there is a choice.
        label_order = active if len(active) < 2 else sorted(active)
        for message_label in label_order:
            # Lines 8–9: gather messages addressed to B.n from direct
            # predecessors' out-buffers, through the receiver index —
            # each emitted message is examined by the one successor
            # label/receiver pair it is for, not by every referencing
            # block.  Raw index reads (see MessageBuffers.outgoing_to —
            # a method call per (pred, label) pair was measurable
            # here); the union is unordered, <_M is applied once below
            # (line 10).
            incoming: set[Message] | None = None
            for pred_state in pred_states:
                buffers = pred_state._ms
                if buffers is None:
                    continue  # block emitted nothing at all
                by_receiver = buffers._out_rcv.get(message_label)
                if by_receiver:
                    messages = by_receiver.get(receiver)
                    if messages:
                        if incoming is None:
                            incoming = set(messages)
                        else:
                            incoming.update(messages)
            if incoming is None:
                continue
            state.ms.add_in(message_label, incoming)
            # Lines 10–11: feed in <_M order; union the responses.
            for message in ordered(incoming):
                result = self._step(
                    state,
                    owned,
                    block,
                    message_label,
                    lambda pi: pi.step_message(message),
                )
                delivered += 1
                state.ms.add_out(message_label, result.messages)
                materialized += len(result.messages)
                new_events.extend(
                    self._emit(block, message_label, result.indications)
                )

        # Line 12 — annotation, interpreted mark and work counters
        # commit together (nothing above this point mutated them).
        states[block.ref] = state
        active_labels[block.ref] = active
        self._own_labels[block.ref] = frozenset(owned) if owned else _EMPTY_LABELS
        self.interpreted.add(block.ref)
        self.blocks_interpreted += 1
        self.request_steps += request_steps
        self.messages_delivered += delivered
        self.messages_materialized += materialized
        if self.tracer.enabled:
            self.tracer.emit(  # type: ignore[attr-defined]
                "interpreted", block=block.ref, n=str(block.n), k=block.k
            )
        if timers is not None:
            timers.observe("interpret-block", perf_counter() - _started)  # type: ignore[attr-defined]
        return new_events

    # -- internals ------------------------------------------------------------

    def _parent_of(self, block: Block, preds: list[Block]) -> Block | None:
        """The unique parent (same builder, sequence k-1) among preds —
        the shared rule of :func:`repro.dag.block.parent_of`, which the
        checkpoint delta encoding must agree with."""
        return parent_of(block, preds)

    # lint: effect() — `action` is one of the two step closures built in
    # _execute (pi.step_request / pi.step_message), both of which land in
    # handler-purity-certified protocol handlers; nothing else is passed.
    def _step(
        self,
        state: BlockState,
        owned: set[Label],
        block: Block,
        label: Label,
        action: Callable[[ProcessInstance], StepResult],
    ) -> StepResult:
        """Apply ``action`` to the builder's process for ``label``,
        copying shared state first (copy-on-write discipline).

        With ``cow=True`` the ownership copy is a structural fork —
        O(fields), containers shared until the step's own write barrier
        touches them; with ``cow=False`` it is the oracle's full
        ``copy.deepcopy``.  Either way the parent block's instance is
        never mutated, so annotations stay per-block."""
        instance = state.pis.get(label)
        if instance is None:
            instance = self.protocol.create(self.servers, block.n, label)
            state.pis[label] = instance
            owned.add(label)
        elif label not in owned:
            instance = instance.fork() if self.cow else copy.deepcopy(instance)
            state.pis[label] = instance
            owned.add(label)
        return action(instance)

    # lint: effect() — self.on_indication is the shim's recording hook;
    # it appends to per-run structures owned by the caller and must stay
    # effect-free (it runs inside interpretation on every replica).
    def _emit(
        self,
        block: Block,
        label: Label,
        indications: Iterable[Indication],
    ) -> list[IndicationEvent]:
        """Record indications (lines 13–14) and fire the callback."""
        events = []
        for indication in indications:
            event = IndicationEvent(label, indication, block.n, block.ref)
            self.events.append(event)
            events.append(event)
            if self.on_indication is not None:
                self.on_indication(event)
        return events
