"""The total message order ``<_M`` (paper §2, used in Algorithm 2 line 10).

The paper assumes "an arbitrary, but fixed, total order on messages".
Its only job is to make every server feed buffered messages to a
process instance in the same sequence, so interpretation is a pure
function of the DAG.  We realize it as lexicographic order on the
canonical encoding of messages — total because the encoding is
injective, fixed because the encoding is content-only.
"""

from __future__ import annotations

from typing import Iterable

from repro.dag.codec import encoding_key
from repro.protocols.base import Message


def message_sort_key(message: Message) -> bytes:
    """The ``<_M`` sort key of a message."""
    return encoding_key(message)


def ordered(messages: Iterable[Message]) -> list[Message]:
    """Messages sorted by ``<_M`` (Algorithm 2 line 10)."""
    return sorted(messages, key=message_sort_key)


def message_less(a: Message, b: Message) -> bool:
    """Whether ``a <_M b`` strictly."""
    return message_sort_key(a) < message_sort_key(b)
