"""``shim(P)`` — Algorithm 3, the composition the main theorem is about.

The shim owns the two synchronized data structures (the request buffer
and the block DAG), runs one gossip and one interpreter instance over
them, and maintains ``P``'s interface toward the user:

* ``request(ℓ, r)``  → buffered, stamped into the next disseminated
  block, eventually requested from the simulated process (Lemma A.17);
* ``indicate(ℓ, i)`` ← fired when the interpretation indicates for
  *this* server, i.e. the event's ``B.n`` equals our identity
  (Algorithm 3 line 8, Lemma A.18).

Theorem 5.1: with ``P`` deterministic, this object implements exactly
``P``'s interface and preserves every property of ``P`` whose proof
rests on the reliable point-to-point link abstraction.  The integration
test suite checks that literally, by comparing traces against
:mod:`repro.runtime.direct`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

from repro.crypto.keys import KeyRing
from repro.dag.block import Block
from repro.dag.blockdag import BlockDag
from repro.gossip.module import Gossip, GossipConfig
from repro.horizon.claims import durable_frontier
from repro.horizon.tracker import HorizonTracker
from repro.interpret.instance import BlockState
from repro.interpret.interpreter import IndicationEvent, Interpreter
from repro.net.message import Envelope
from repro.net.transport import Transport
from repro.obs.trace import NULL_RECORDER
from repro.protocols.base import ProtocolSpec
from repro.requests import RequestBuffer
from repro.storage.blockstore import ServerStorage
from repro.storage.checkpoint import capture_checkpoint, restore_block_state
from repro.storage.gc import prune
from repro.storage.recover import RecoveryReport, recover_shim_state
from repro.types import BlockRef, Indication, Label, Request, ServerId

#: User-facing indication callback: ``(label, indication)``.
IndicationHandler = Callable[[Label, Indication], None]


class Shim:
    """One server's ``shim(P)`` instance (Algorithm 3).

    Parameters
    ----------
    server:
        This server's identity.
    protocol:
        The deterministic black box ``P``.
    keyring:
        Keys for the fixed server set.
    transport:
        Network facade for gossip.
    on_indication:
        Optional user callback; indications are also collected in
        :attr:`indications`.
    auto_interpret:
        When ``True`` (default) the interpreter runs after every DAG
        insertion.  The interpreter's incremental ready-queue scheduler
        makes each such run O(newly eligible work), not a DAG rescan —
        steady-state gossip interprets in amortized O(out-degree) per
        block.  ``False`` decouples building from interpretation — the
        off-line mode of experiment CLM-OFFLINE; call
        :meth:`interpret_now` explicitly.
    storage:
        Optional :class:`~repro.storage.blockstore.ServerStorage`.
        When given, every inserted block is appended to the WAL before
        interpretation, interpreter checkpoints are written every
        ``storage.config.checkpoint_interval`` interpreted blocks (with
        pruning below the stable frontier when enabled), and — if the
        storage directory already holds a previous incarnation's data —
        the shim **recovers from disk** during construction: DAG,
        annotations, indication history and builder chain all resume
        where the crash left them (see :mod:`repro.storage.recover`).
        Indications replayed for the post-checkpoint suffix re-fire the
        ``on_indication`` callback: delivery is at-least-once across a
        crash, exactly like any durable-log system.
    cow:
        Structurally-shared instance states (the default).  ``False``
        restores the ``copy.deepcopy`` ownership copy — the executable
        oracle convention, like ``Interpreter(..., incremental=False)``.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder` — the flight
        recorder for this server, threaded into gossip, interpreter,
        horizon tracker and storage.  Defaults to the shared no-op
        recorder (tracing off).
    timers:
        Optional :class:`~repro.obs.timers.HotPathTimers` — wall-clock
        hot-path histograms, threaded alongside the tracer but never
        visible in trace identity.
    """

    def __init__(
        self,
        server: ServerId,
        protocol: ProtocolSpec,
        keyring: KeyRing,
        transport: Transport,
        config: GossipConfig | None = None,
        on_indication: IndicationHandler | None = None,
        auto_interpret: bool = True,
        storage: ServerStorage | None = None,
        cow: bool = True,
        tracer: object | None = None,
        timers: object | None = None,
    ) -> None:
        self.server = server
        self.protocol = protocol
        self.keyring = keyring
        self.auto_interpret = auto_interpret
        self.on_indication = on_indication
        self.storage = storage
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.timers = timers
        if storage is not None:
            # Before any recovery below: replayed WAL decodes and
            # flushes should land in the same histograms as live ones.
            storage.tracer = self.tracer
            storage.timers = timers
        self.rqsts = RequestBuffer()  # line 2
        self.dag = BlockDag()  # line 3
        #: Coordinated GC is active when storage is configured with
        #: ``horizon_gc`` (the default): claims are stamped, pruning
        #: follows the agreed horizon, and below-horizon arrivals are
        #: condemned.  Without storage the tracker still observes peer
        #: claims (it is cheap and keeps the horizon view comparable
        #: across servers) but drives nothing.
        self.coordinated_gc = storage is not None and storage.config.horizon_gc
        self.horizon = HorizonTracker(
            keyring.servers, dag=self.dag, tracer=self.tracer
        )
        self.gossip = Gossip(  # line 4
            server,
            keyring,
            transport,
            self.rqsts,
            dag=self.dag,
            config=config,
            on_insert=self._on_insert,
            on_batch_end=self._on_batch_end,
            horizon=self.horizon if self.coordinated_gc else None,
            tracer=self.tracer,
            timers=timers,
        )
        self.interpreter = Interpreter(  # line 5
            self.dag,
            protocol,
            keyring.servers,
            on_indication=self._on_event,
            cow=cow,
            tracer=self.tracer,
            timers=timers,
        )
        if self.coordinated_gc:
            self.interpreter.rehydrator = self._rehydrate_state
        #: Indications delivered to the user of ``P`` at this server.
        self.indications: list[tuple[Label, Indication]] = []
        #: Report of the restart-from-disk performed at construction,
        #: or ``None`` if this shim started fresh.
        self.recovery: RecoveryReport | None = None
        self._interpreted_at_checkpoint = 0
        self._last_checkpoint = None
        #: Consecutive checkpoint passes each block has been
        #: destruction-eligible (the pruner's hysteresis state; resets
        #: naturally on restart — a recovered server must re-earn every
        #: streak).
        self._destruction_streaks: dict[BlockRef, int] = {}
        #: Interpreted sets of the last ``pin_recent_checkpoints``
        #: checkpoints, newest last — the pruner pins everything
        #: interpreted since the oldest of them (the recent cone),
        #: damping release→rehydrate thrash near the tip.
        self._recent_frontiers: "deque[frozenset[BlockRef]]" = deque(
            maxlen=max(
                1,
                storage.config.pin_recent_checkpoints if storage is not None else 1,
            )
        )
        if storage is not None and storage.has_data():
            self.recovery = recover_shim_state(self)
            self._interpreted_at_checkpoint = self.interpreter.blocks_interpreted
            self._last_checkpoint = self.recovery.checkpoint
            if self._last_checkpoint is not None:
                self._recent_frontiers.append(
                    frozenset(self._last_checkpoint.refs)
                )
            if self.coordinated_gc and self._last_checkpoint is not None:
                # Resume claiming where the previous incarnation left
                # off: the recovered checkpoint is our durable frontier.
                self.gossip.builder.set_claim(
                    durable_frontier(
                        self.dag, self.keyring.servers,
                        self._last_checkpoint.refs,
                    )
                )

    # -- the interface of P (lines 6–9) ------------------------------------------

    def request(self, label: Label, request: Request) -> None:
        """``request(ℓ, r)`` — lines 6–7."""
        self.rqsts.put(label, request)

    def _on_event(self, event: IndicationEvent) -> None:
        """Lines 8–9: surface only the interpretation of *ourselves*."""
        if event.server != self.server:
            return
        self.indications.append((event.label, event.indication))
        if self.tracer.enabled:
            self.tracer.emit(  # type: ignore[attr-defined]
                "indication",
                block=event.block_ref,
                label=str(event.label),
                value=repr(event.indication),
            )
        if self.on_indication is not None:
            self.on_indication(event.label, event.indication)

    # -- choreography (lines 10–11 and the dotted line of Figure 1) ----------------

    def disseminate(self) -> Block:
        """One ``gssp.disseminate()`` — invoked repeatedly by the runtime."""
        return self.gossip.disseminate()

    def on_network(self, src: ServerId, envelope: Envelope) -> None:
        """Network ingress, routed to gossip."""
        self.gossip.on_receive(src, envelope)

    def _on_insert(self, block: Block) -> None:
        # Write-ahead intent: the block joins the WAL chain-frame
        # buffer here; the frame is flushed at the gossip batch end —
        # always *before* interpretation, so the block is durable
        # before any visible effect (indications) can happen.  A whole
        # buffered chain admitted by one arrival becomes one WAL record
        # instead of one per block.
        if self.storage is not None:
            self.storage.append_block(block)

    def _on_batch_end(self) -> None:
        # One external gossip event (arrival or dissemination) fully
        # cascaded: make its insertions durable, then interpret the
        # newly eligible suffix in one batched pass.
        if self.storage is not None:
            self.storage.flush_wal()
        if self.auto_interpret:
            self.interpreter.run()
            self._maybe_checkpoint()

    def interpret_now(self) -> list[IndicationEvent]:
        """Run interpretation to the current DAG frontier (off-line mode)."""
        if self.storage is not None:
            self.storage.flush_wal()
        events = self.interpreter.run()
        self._maybe_checkpoint()
        return events

    # -- durability (storage subsystem) ---------------------------------------------

    def checkpoint_age(self) -> int:
        """Blocks interpreted since the last checkpoint (0 if none due)."""
        return self.interpreter.blocks_interpreted - self._interpreted_at_checkpoint

    def _maybe_checkpoint(self) -> None:
        if self.storage is None:
            return
        if self.checkpoint_age() >= self.storage.config.checkpoint_interval:
            self.checkpoint_now()

    def checkpoint_now(self) -> None:
        """Prune below the stable frontier, snapshot the interpreter,
        persist the snapshot, and GC the WAL segments it covers.

        Order matters for crash safety: states are only released if the
        *previous* durable checkpoint held them (rule 1 of
        :func:`repro.storage.gc.prunable_refs`), and WAL segments are
        only dropped once the checkpoint written *now* covers their
        skeletons — so (latest checkpoint + remaining WAL) always
        reconstructs the full state.

        With coordinated GC the pruner follows the agreed horizon
        (memory released above it stays rehydratable from the carried
        checkpoint entries; payloads/WAL/checkpoint data retire only
        below it), and the freshly written checkpoint's frontier is
        stamped as this server's claim into every block sealed from now
        on — which is how the next horizon agreement forms.
        """
        if self.storage is None:
            return
        horizon = self.horizon.horizon if self.coordinated_gc else None
        if self.storage.config.prune and self._last_checkpoint is not None:
            durable = frozenset(self._last_checkpoint.states)
            # Destroying data (payloads → skeletons → WAL segments) is
            # deferred while this server is visibly behind — many
            # known-missing predecessors outstanding, or our own chain
            # trailing the best peer tip.  Blocks admitted during
            # catch-up may reference anything in that gap, and once a
            # payload is gone the only remaining answer is condemnation
            # — which must never hit honest history just because we
            # pruned mid-recovery.  Independently, anything a currently
            # buffered block references is pinned: it will be read the
            # moment that block is admitted.
            catching_up = (
                self.gossip.missing_predecessors() > 4
                or self.gossip.blocks_behind() > 2
            )
            report = prune(
                self.dag,
                self.interpreter,
                durable,
                horizon=horizon,
                allow_destruction=not catching_up,
                protected=frozenset(self.gossip.buffered_references()),
                destruction_delay=self.storage.config.destruction_delay,
                streaks=self._destruction_streaks,
                pinned=self._pinned_recent(),
                tracer=self.tracer if self.tracer.enabled else None,
            )
            self.storage.metrics.states_released += report.states_released
            self.storage.metrics.payloads_dropped += report.payloads_dropped
        checkpoint = capture_checkpoint(
            self.storage.checkpoints.next_seq(),
            self.interpreter,
            self.dag,
            owner=self.server,
            previous=self._last_checkpoint,
        )
        self.storage.write_checkpoint(checkpoint)
        if self.tracer.enabled:
            self.tracer.emit(  # type: ignore[attr-defined]
                "checkpoint",
                seq=int(checkpoint.seq),
                refs=len(checkpoint.refs),
            )
        self._last_checkpoint = checkpoint
        self._recent_frontiers.append(frozenset(checkpoint.refs))
        self._interpreted_at_checkpoint = self.interpreter.blocks_interpreted
        if self.coordinated_gc:
            self.gossip.builder.set_claim(
                durable_frontier(self.dag, self.keyring.servers, checkpoint.refs)
            )

    def _pinned_recent(self) -> frozenset[BlockRef]:
        """The recent cone the pruner must not release: everything
        interpreted since the ``pin_recent_checkpoints``-th most recent
        checkpoint.  Until that many checkpoints exist, everything is
        pinned — the window has not opened yet."""
        if self.storage is None:
            return frozenset()
        window = self.storage.config.pin_recent_checkpoints
        if window <= 0:
            return frozenset()
        if len(self._recent_frontiers) < window:
            return frozenset(self.interpreter.interpreted)
        return frozenset(
            self.interpreter.interpreted - self._recent_frontiers[0]
        )

    def _rehydrate_state(
        self, ref: BlockRef
    ) -> "tuple[BlockState, frozenset[Label], frozenset[Label]] | None":
        """Interpreter rehydration hook: reconstruct a released block's
        annotation from the covering checkpoint (held in memory — the
        carry-forward guarantees the latest checkpoint covers every
        released-above-horizon block)."""
        if self._last_checkpoint is None:
            return None
        return restore_block_state(
            self._last_checkpoint, self.protocol, self.interpreter.servers, ref
        )

    # -- introspection --------------------------------------------------------------

    def indications_for(self, label: Label) -> list[Indication]:
        """This server's indications for one protocol instance."""
        return [i for (l, i) in self.indications if l == label]

    def backlog(self) -> int:
        """Buffered user requests not yet in a block."""
        return self.rqsts.peek_backlog()


def connect_shims(
    servers: Sequence[ServerId],
    protocol: ProtocolSpec,
    keyring: KeyRing,
    transports: dict[ServerId, Transport],
    **shim_kwargs: object,
) -> dict[ServerId, Shim]:
    """Build one shim per server over the given transports (helper for
    examples and tests that wire clusters manually)."""
    return {
        server: Shim(server, protocol, keyring, transports[server], **shim_kwargs)
        for server in servers
    }
