"""The user-facing composition layer — the paper's ``shim(P)`` (§5).

* :mod:`repro.requests` — the synchronized ``rqsts`` buffer (top-level
  because gossip consumes it too; re-exported here for convenience).
* :mod:`repro.shim.shim` — Algorithm 3: choreography between the user,
  ``gossip`` and ``interpret``.
"""

from repro.requests import RequestBuffer
from repro.shim.shim import Shim

__all__ = ["RequestBuffer", "Shim"]
