"""Declarative stop conditions for scenario runs.

``run_until(lambda c: ...)`` predicates were copied, slightly mutated,
across every benchmark and example.  Stop conditions make the common
ones first-class values that serialize with the scenario: a run stops
when its condition holds (``stopped_by = "stop-condition"``) or when
``max_rounds`` is exhausted (``stopped_by = "max-rounds"`` — in a
correct run of a liveness scenario that usually means a bug, which is
exactly what the result should surface).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ScenarioError
from repro.scenario._kinds import decode_kind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.runner import ScenarioRunner

_STOP_KINDS: dict[str, type["StopCondition"]] = {}


@dataclass(frozen=True)
class StopCondition:
    """Base class of the declarative stop conditions."""

    kind = "stop"

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        # Only classes declaring their own kind are decodable; abstract
        # intermediaries (e.g. the And/Or base) inherit `kind` and must
        # not be reachable from JSON.
        if "kind" in cls.__dict__:
            _STOP_KINDS[cls.kind] = cls

    def satisfied(self, runner: "ScenarioRunner") -> bool:
        raise NotImplementedError

    def to_json_dict(self) -> dict[str, object]:
        data: dict[str, object] = {"kind": self.kind}
        data.update(self._payload())
        return data

    def _payload(self) -> dict[str, object]:
        return {}

    @staticmethod
    def from_json_dict(data: dict[str, object]) -> "StopCondition":
        return decode_kind(_STOP_KINDS, StopCondition, data, "stop-condition")

    @classmethod
    def _from_payload(cls, data: dict[str, object]) -> "StopCondition":
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class AllDelivered(StopCondition):
    """The workload is exhausted and every issued request is delivered
    at every configured correct server."""

    kind = "all-delivered"

    def satisfied(self, runner: "ScenarioRunner") -> bool:
        return runner.driver.exhausted() and runner.driver.all_delivered_now()


@dataclass(frozen=True)
class DagsConverged(StopCondition):
    """All configured correct servers hold identical DAGs (and none is
    down, unless ``live_only``)."""

    kind = "dags-converged"

    live_only: bool = False

    def satisfied(self, runner: "ScenarioRunner") -> bool:
        return runner.cluster.dags_converged(live_only=self.live_only)

    def _payload(self) -> dict[str, object]:
        return {"live_only": self.live_only}


@dataclass(frozen=True)
class RoundsElapsed(StopCondition):
    """Plain round budget — for open-ended soak/pruning scenarios."""

    kind = "rounds-elapsed"

    rounds: int = 1

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ScenarioError(f"rounds must be ≥ 1, got {self.rounds}")

    def satisfied(self, runner: "ScenarioRunner") -> bool:
        return runner.rounds_run >= self.rounds

    def _payload(self) -> dict[str, object]:
        return {"rounds": self.rounds}


@dataclass(frozen=True)
class _Composite(StopCondition):
    conditions: tuple[StopCondition, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(self.conditions))
        if not self.conditions:
            raise ScenarioError(f"{self.kind} needs at least one condition")

    def _payload(self) -> dict[str, object]:
        return {"conditions": [c.to_json_dict() for c in self.conditions]}

    @classmethod
    def _from_payload(cls, data: dict[str, object]) -> "StopCondition":
        raw = data.get("conditions")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ScenarioError(f"{cls.kind} needs a list of conditions")
        return cls(
            conditions=tuple(StopCondition.from_json_dict(d) for d in raw)
        )


@dataclass(frozen=True)
class And(_Composite):
    """All sub-conditions hold."""

    kind = "and"

    def satisfied(self, runner: "ScenarioRunner") -> bool:
        return all(c.satisfied(runner) for c in self.conditions)


@dataclass(frozen=True)
class Or(_Composite):
    """Any sub-condition holds."""

    kind = "or"

    def satisfied(self, runner: "ScenarioRunner") -> bool:
        return any(c.satisfied(runner) for c in self.conditions)
