"""Typed results of a scenario run.

A :class:`ScenarioResult` is everything a benchmark, CI step or paper
table needs from one run: request latency percentiles, throughput,
convergence, and the wire/interpreter/storage counters as the typed
snapshots of :mod:`repro.runtime.snapshots`.  ``to_json()`` emits a
stable (sorted-keys) document; for a fixed scenario + seed the document
is byte-identical across runs once the wall-clock field is excluded —
the determinism regression test asserts exactly that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ScenarioError
from repro.obs.lifecycle import LifecycleStats
from repro.obs.metrics import MetricsError, MetricsReport
from repro.runtime.snapshots import (
    InterpreterSnapshot,
    StorageSnapshot,
    WireSnapshot,
)
from repro.scenario.slo import SloReport


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of an empty series")
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return float(sorted_values[rank])


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of per-request delivery latencies."""

    count: int = 0
    p50: float | None = None
    p90: float | None = None
    p99: float | None = None
    max: float | None = None
    mean: float | None = None

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencyStats":
        values = sorted(float(v) for v in samples)
        if not values:
            return LatencyStats(count=0)
        return LatencyStats(
            count=len(values),
            p50=percentile(values, 0.50),
            p90=percentile(values, 0.90),
            p99=percentile(values, 0.99),
            max=values[-1],
            mean=round(sum(values) / len(values), 6),
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
            "mean": self.mean,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "LatencyStats":
        return LatencyStats(
            count=int(data.get("count", 0)),  # type: ignore[arg-type]
            p50=data.get("p50"),  # type: ignore[arg-type]
            p90=data.get("p90"),  # type: ignore[arg-type]
            p99=data.get("p99"),  # type: ignore[arg-type]
            max=data.get("max"),  # type: ignore[arg-type]
            mean=data.get("mean"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run produced, as one typed value."""

    scenario: str
    protocol: str
    seed: int
    rounds_run: int = 0
    virtual_time: float = 0.0
    stopped_by: str = "stop-condition"
    converged: bool = False
    requests_issued: int = 0
    requests_delivered: int = 0
    #: Delivered requests per unit of virtual time.
    throughput: float = 0.0
    latency_rounds: LatencyStats = field(default_factory=LatencyStats)
    latency_time: LatencyStats = field(default_factory=LatencyStats)
    wire: WireSnapshot = field(default_factory=WireSnapshot)
    interpreter: InterpreterSnapshot = field(default_factory=InterpreterSnapshot)
    storage: StorageSnapshot = field(default_factory=StorageSnapshot)
    total_blocks: int = 0
    forks_observed: int = 0
    crashes: int = 0
    restarts: int = 0
    down_at_end: tuple[str, ...] = ()
    probes: dict[str, tuple[float, ...]] = field(default_factory=dict)
    #: Block-lifecycle latency percentiles (virtual time, hence fully
    #: deterministic), present when the topology enabled tracing.
    lifecycle: LifecycleStats | None = None
    #: Cluster-wide metrics merge.  On the simulated arm this is built
    #: from the deterministic wire/interpreter/storage counters (so the
    #: document stays byte-identical for a fixed seed); on the live arm
    #: it is the scraped wall-clock :class:`MetricsReport`.
    metrics: MetricsReport | None = None
    #: Wall-clock block lifecycle joined *across node processes* by ref
    #: (seal→first-receive→validate→interpret), live runs only.
    live_lifecycle: LifecycleStats | None = None
    #: SLO verdicts — evaluated on live runs when the scenario declares
    #: an ``slo`` block; ``None`` otherwise.
    slo: SloReport | None = None
    #: Wall-clock seconds — the one field excluded from determinism
    #: comparisons (``to_json(include_wall_clock=False)``).
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "down_at_end", tuple(self.down_at_end))
        object.__setattr__(
            self,
            "probes",
            {name: tuple(series) for name, series in self.probes.items()},
        )

    def delivery_ratio(self) -> float:
        """Delivered / issued (1.0 for an empty workload)."""
        if not self.requests_issued:
            return 1.0
        return self.requests_delivered / self.requests_issued

    # -- JSON ------------------------------------------------------------------

    def to_json_dict(self, include_wall_clock: bool = True) -> dict[str, object]:
        data: dict[str, object] = {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "rounds_run": self.rounds_run,
            "virtual_time": self.virtual_time,
            "stopped_by": self.stopped_by,
            "converged": self.converged,
            "requests": {
                "issued": self.requests_issued,
                "delivered": self.requests_delivered,
                "throughput": self.throughput,
                "latency_rounds": self.latency_rounds.as_dict(),
                "latency_time": self.latency_time.as_dict(),
            },
            "wire": self.wire.as_dict(),
            "interpreter": self.interpreter.as_dict(),
            "storage": self.storage.as_dict(),
            "cluster": {
                "total_blocks": self.total_blocks,
                "forks_observed": self.forks_observed,
                "crashes": self.crashes,
                "restarts": self.restarts,
                "down_at_end": list(self.down_at_end),
            },
            "probes": {
                name: list(series) for name, series in sorted(self.probes.items())
            },
            "lifecycle": (
                None if self.lifecycle is None else self.lifecycle.as_dict()
            ),
            "metrics": (
                None if self.metrics is None else self.metrics.as_dict()
            ),
            "live_lifecycle": (
                None
                if self.live_lifecycle is None
                else self.live_lifecycle.as_dict()
            ),
            "slo": None if self.slo is None else self.slo.to_json_dict(),
        }
        if include_wall_clock:
            data["wall_seconds"] = self.wall_seconds
        return data

    def to_json(
        self, include_wall_clock: bool = True, indent: int | None = None
    ) -> str:
        return json.dumps(
            self.to_json_dict(include_wall_clock=include_wall_clock),
            indent=indent,
            sort_keys=True,
        )

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "ScenarioResult":
        try:
            requests = data.get("requests", {})
            cluster = data.get("cluster", {})
            assert isinstance(requests, Mapping) and isinstance(cluster, Mapping)
            return ScenarioResult(
                scenario=str(data["scenario"]),
                protocol=str(data["protocol"]),
                seed=int(data["seed"]),  # type: ignore[arg-type]
                rounds_run=int(data.get("rounds_run", 0)),  # type: ignore[arg-type]
                virtual_time=float(data.get("virtual_time", 0.0)),  # type: ignore[arg-type]
                stopped_by=str(data.get("stopped_by", "stop-condition")),
                converged=bool(data.get("converged", False)),
                requests_issued=int(requests.get("issued", 0)),  # type: ignore[arg-type]
                requests_delivered=int(requests.get("delivered", 0)),  # type: ignore[arg-type]
                throughput=float(requests.get("throughput", 0.0)),  # type: ignore[arg-type]
                latency_rounds=LatencyStats.from_dict(
                    requests.get("latency_rounds", {})  # type: ignore[arg-type]
                ),
                latency_time=LatencyStats.from_dict(
                    requests.get("latency_time", {})  # type: ignore[arg-type]
                ),
                wire=WireSnapshot.from_dict(dict(data.get("wire", {}))),  # type: ignore[arg-type]
                interpreter=InterpreterSnapshot.from_dict(
                    dict(data.get("interpreter", {}))  # type: ignore[arg-type]
                ),
                storage=StorageSnapshot.from_dict(
                    dict(data.get("storage", {}))  # type: ignore[arg-type]
                ),
                total_blocks=int(cluster.get("total_blocks", 0)),  # type: ignore[arg-type]
                forks_observed=int(cluster.get("forks_observed", 0)),  # type: ignore[arg-type]
                crashes=int(cluster.get("crashes", 0)),  # type: ignore[arg-type]
                restarts=int(cluster.get("restarts", 0)),  # type: ignore[arg-type]
                down_at_end=tuple(cluster.get("down_at_end", ())),  # type: ignore[arg-type]
                probes={
                    str(name): tuple(float(v) for v in series)
                    for name, series in dict(data.get("probes", {})).items()  # type: ignore[arg-type]
                },
                lifecycle=(
                    None
                    if data.get("lifecycle") is None
                    else LifecycleStats.from_dict(data["lifecycle"])  # type: ignore[arg-type]
                ),
                metrics=(
                    None
                    if data.get("metrics") is None
                    else MetricsReport.from_dict(data["metrics"])  # type: ignore[arg-type]
                ),
                live_lifecycle=(
                    None
                    if data.get("live_lifecycle") is None
                    else LifecycleStats.from_dict(data["live_lifecycle"])  # type: ignore[arg-type]
                ),
                slo=(
                    None
                    if data.get("slo") is None
                    else SloReport.from_json_dict(data["slo"])  # type: ignore[arg-type]
                ),
                wall_seconds=float(data.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            )
        except (
            KeyError,
            AssertionError,
            ValueError,
            TypeError,
            MetricsError,
        ) as exc:
            raise ScenarioError(f"bad scenario-result document: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "ScenarioResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"result is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ScenarioError("result JSON must be an object")
        return ScenarioResult.from_json_dict(data)
