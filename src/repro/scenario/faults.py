"""The unified fault timeline — one ordered event stream for all three
fault families.

The runtime grew three incompatible fault knobs: network faults
(:class:`~repro.net.faults.FaultPlan`, in virtual time), crash faults
(:class:`~repro.runtime.cluster.CrashPlan`, in rounds) and byzantine
seats (the ``adversaries`` constructor map).  A :class:`FaultSchedule`
describes all of them declaratively in *round* units and compiles down
to the three runtime artefacts in one place, so a "partition while a
server is down and an equivocator is live" scenario is a single list of
events instead of three coordinated objects.

Everything here is pure data and JSON round-trippable; Assumption 1
validation (no message loss between correct servers) still happens in
the :class:`~repro.net.faults.LinkFaults` constructor the compiled plan
is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ScenarioError
from repro.net.faults import FaultPlan, HealingPartition, LinkFaults
from repro.scenario._kinds import decode_kind
from repro.runtime.adversary import (
    Adversary,
    CrashAdversary,
    EquivocatorAdversary,
    GarbageAdversary,
    SilentAdversary,
    WithholdingAdversary,
)
from repro.runtime.cluster import CrashEvent, CrashPlan
from repro.types import ServerId

_FAULT_KINDS: dict[str, type["FaultEvent"]] = {}

#: Byzantine behaviours a scenario can seat, by name.
BEHAVIOURS: dict[str, Callable[..., Adversary]] = {
    "silent": SilentAdversary,
    "crash": CrashAdversary,
    "equivocator": EquivocatorAdversary,
    "garbage": GarbageAdversary,
    "withholding": WithholdingAdversary,
}


@dataclass(frozen=True)
class FaultEvent:
    """Base class of the declarative fault events."""

    kind = "fault"

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        # Abstract intermediaries (no own `kind`) are not decodable.
        if "kind" in cls.__dict__:
            _FAULT_KINDS[cls.kind] = cls

    def validate(self, servers: Sequence[ServerId]) -> None:
        """Check the event against the configured server set."""

    def to_json_dict(self) -> dict[str, object]:
        data: dict[str, object] = {"kind": self.kind}
        data.update(self._payload())
        return data

    def _payload(self) -> dict[str, object]:
        return {}

    @staticmethod
    def from_json_dict(data: dict[str, object]) -> "FaultEvent":
        return decode_kind(_FAULT_KINDS, FaultEvent, data, "fault")

    @classmethod
    def _from_payload(cls, data: dict[str, object]) -> "FaultEvent":
        return cls(**data)  # type: ignore[arg-type]

    def _check_server(self, server: str, servers: Sequence[ServerId]) -> None:
        if server not in servers:
            raise ScenarioError(
                f"{self.kind} fault names unknown server {server!r} "
                f"(configured: {list(servers)})"
            )


@dataclass(frozen=True)
class PartitionFault(FaultEvent):
    """A healing partition between two server groups, in round units."""

    kind = "partition"

    start_round: int = 0
    heal_round: int = 1
    group_a: tuple[str, ...] = ()
    group_b: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.heal_round <= self.start_round:
            raise ScenarioError(
                f"partition must heal after it starts "
                f"(start={self.start_round}, heal={self.heal_round})"
            )
        if set(self.group_a) & set(self.group_b):
            raise ScenarioError("partition groups must be disjoint")
        # JSON hands us lists; normalize to tuples so Scenario stays hashable.
        object.__setattr__(self, "group_a", tuple(self.group_a))
        object.__setattr__(self, "group_b", tuple(self.group_b))

    def validate(self, servers: Sequence[ServerId]) -> None:
        for server in (*self.group_a, *self.group_b):
            self._check_server(server, servers)

    def _payload(self) -> dict[str, object]:
        return {
            "start_round": self.start_round,
            "heal_round": self.heal_round,
            "group_a": list(self.group_a),
            "group_b": list(self.group_b),
        }


@dataclass(frozen=True)
class CrashFault(FaultEvent):
    """Crash a correct server at ``crash_round``; optionally restart it
    from disk at ``restart_round`` (``None`` = down forever)."""

    kind = "crash"

    server: str = ""
    crash_round: int = 0
    restart_round: int | None = None

    def validate(self, servers: Sequence[ServerId]) -> None:
        self._check_server(self.server, servers)

    def _payload(self) -> dict[str, object]:
        return {
            "server": self.server,
            "crash_round": self.crash_round,
            "restart_round": self.restart_round,
        }


@dataclass(frozen=True)
class ByzantineFault(FaultEvent):
    """Seat ``server`` with a byzantine behaviour for the whole run.

    ``equivocate_at`` (equivocator behaviour only) lists rounds at which
    the seat submits a conflicting request pair — one value to each half
    of the network — on a fresh instance label, making Figure 3's fork
    happen on demand.
    """

    kind = "byzantine"

    server: str = ""
    behaviour: str = "silent"
    equivocate_at: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.behaviour not in BEHAVIOURS:
            raise ScenarioError(
                f"unknown byzantine behaviour {self.behaviour!r} "
                f"(known: {sorted(BEHAVIOURS)})"
            )
        if self.equivocate_at and self.behaviour != "equivocator":
            raise ScenarioError(
                "equivocate_at only makes sense for the 'equivocator' behaviour"
            )
        object.__setattr__(self, "equivocate_at", tuple(self.equivocate_at))

    def validate(self, servers: Sequence[ServerId]) -> None:
        self._check_server(self.server, servers)

    def _payload(self) -> dict[str, object]:
        return {
            "server": self.server,
            "behaviour": self.behaviour,
            "equivocate_at": list(self.equivocate_at),
        }


@dataclass(frozen=True)
class LinkLossFault(FaultEvent):
    """Probabilistic loss on every link touching ``server``.

    Loss is only legal on links with a byzantine endpoint (Assumption 1),
    so this implicitly declares ``server`` byzantine to the fault layer;
    pair it with a :class:`ByzantineFault` seat or a silent server."""

    kind = "link-loss"

    server: str = ""
    probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ScenarioError(
                f"loss probability out of range: {self.probability}"
            )

    def validate(self, servers: Sequence[ServerId]) -> None:
        self._check_server(self.server, servers)

    def _payload(self) -> dict[str, object]:
        return {"server": self.server, "probability": self.probability}


@dataclass(frozen=True)
class DuplicationFault(FaultEvent):
    """Probabilistic duplication on every link (always legal under
    Assumption 1 — correct protocols must deduplicate)."""

    kind = "duplication"

    probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ScenarioError(
                f"duplication probability out of range: {self.probability}"
            )

    def _payload(self) -> dict[str, object]:
        return {"probability": self.probability}


@dataclass(frozen=True)
class CompiledFaults:
    """The three runtime artefacts one schedule compiles into, plus the
    equivocation cues the runner injects while driving."""

    fault_plan: FaultPlan
    crash_plan: CrashPlan
    adversaries: Mapping[str, Callable[..., Adversary]]
    #: (round, server) pairs at which an equivocator seat forks.
    equivocation_cues: tuple[tuple[int, str], ...]


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, composable timeline over all three fault families."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- views ----------------------------------------------------------------

    def byzantine_servers(self) -> set[str]:
        return {
            e.server for e in self.events if isinstance(e, ByzantineFault)
        } | {e.server for e in self.events if isinstance(e, LinkLossFault)}

    def crash_events(self) -> list[CrashFault]:
        return [e for e in self.events if isinstance(e, CrashFault)]

    def needs_storage(self) -> bool:
        """Crash faults wipe volatile state; restart requires a disk."""
        return bool(self.crash_events())

    # -- validation + compilation ----------------------------------------------

    def validate(self, servers: Sequence[ServerId]) -> None:
        byz = self.byzantine_servers()
        for event in self.events:
            event.validate(servers)
            if isinstance(event, CrashFault) and event.server in byz:
                raise ScenarioError(
                    f"server {event.server!r} is both a byzantine seat and a "
                    f"crash-fault target; crash faults apply to correct servers"
                )

    def compile(
        self, servers: Sequence[ServerId], round_duration: float
    ) -> CompiledFaults:
        """Lower the round-based timeline onto the runtime's fault knobs."""
        self.validate(servers)
        partitions: list[HealingPartition] = []
        crash_events: list[CrashEvent] = []
        adversaries: dict[ServerId, Callable[..., Adversary]] = {}
        cues: list[tuple[int, str]] = []
        byzantine: set[ServerId] = set()
        loss: dict[tuple[ServerId, ServerId], float] = {}
        duplication: dict[tuple[ServerId, ServerId], float] = {}
        for event in self.events:
            if isinstance(event, PartitionFault):
                partitions.append(
                    HealingPartition(
                        group_a=frozenset(ServerId(s) for s in event.group_a),
                        group_b=frozenset(ServerId(s) for s in event.group_b),
                        start=event.start_round * round_duration,
                        heal=event.heal_round * round_duration,
                    )
                )
            elif isinstance(event, CrashFault):
                crash_events.append(
                    CrashEvent(
                        ServerId(event.server),
                        event.crash_round,
                        event.restart_round,
                    )
                )
            elif isinstance(event, ByzantineFault):
                adversaries[ServerId(event.server)] = BEHAVIOURS[event.behaviour]
                byzantine.add(ServerId(event.server))
                for round_index in event.equivocate_at:
                    cues.append((round_index, event.server))
            elif isinstance(event, LinkLossFault):
                bad = ServerId(event.server)
                byzantine.add(bad)
                for peer in servers:
                    if peer == bad:
                        continue
                    loss[(bad, peer)] = event.probability
                    loss[(peer, bad)] = event.probability
            elif isinstance(event, DuplicationFault):
                for src in servers:
                    for dst in servers:
                        if src != dst:
                            duplication[(src, dst)] = event.probability
        fault_plan = FaultPlan(
            link_faults=LinkFaults(
                byzantine=frozenset(byzantine),
                loss=loss,
                duplication=duplication,
            ),
            partitions=partitions,
        )
        crash_plan = CrashPlan(events=tuple(crash_events))
        return CompiledFaults(
            fault_plan=fault_plan,
            crash_plan=crash_plan,
            adversaries=adversaries,
            equivocation_cues=tuple(sorted(cues)),
        )

    # -- JSON -----------------------------------------------------------------

    def to_json_list(self) -> list[dict[str, object]]:
        return [event.to_json_dict() for event in self.events]

    @staticmethod
    def from_json_list(data: Sequence[dict[str, object]]) -> "FaultSchedule":
        return FaultSchedule(
            events=tuple(FaultEvent.from_json_dict(d) for d in data)
        )
