"""The registry of named scenarios — the runnable catalogue behind
``python -m repro.scenario``.

Each entry is a builder taking ``smoke`` (a smaller, CI-friendly
variant with the same shape) and returning a full :class:`Scenario`
value.  Because scenarios are plain data, ``show <name>`` prints the
exact JSON that ``run <name>`` executes — the catalogue doubles as the
schema's worked examples.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ScenarioError
from repro.scenario.faults import (
    ByzantineFault,
    CrashFault,
    FaultSchedule,
    PartitionFault,
)
from repro.scenario.slo import SloSpec
from repro.scenario.spec import LatencySpec, Scenario, StorageSpec, Topology
from repro.scenario.stop import AllDelivered, And, DagsConverged, RoundsElapsed
from repro.scenario.workload import ClosedLoopWorkload, OpenLoopWorkload

ScenarioBuilder = Callable[[bool], Scenario]

_DEFAULT_PROBES = ("total-blocks", "wire-bytes", "delivered")


def _fault_free(smoke: bool) -> Scenario:
    return Scenario(
        name="fault-free",
        protocol="brb",
        description="Baseline: reliable broadcast, no faults, open-loop "
        "workload until everything is delivered everywhere.",
        workload=OpenLoopWorkload(rate=1 if smoke else 2, rounds=2 if smoke else 3),
        stop=And((AllDelivered(), DagsConverged())),
        probes=_DEFAULT_PROBES,
        max_rounds=16,
    )


def _partition_heal(smoke: bool) -> Scenario:
    return Scenario(
        name="partition-heal",
        protocol="brb",
        description="A 2|2 partition opens mid-workload and heals; "
        "queued cross-cut traffic lands and the DAGs reconverge.",
        workload=OpenLoopWorkload(rate=1, rounds=2 if smoke else 4),
        faults=FaultSchedule(
            (
                PartitionFault(
                    start_round=1,
                    heal_round=3 if smoke else 5,
                    group_a=("s1", "s2"),
                    group_b=("s3", "s4"),
                ),
            )
        ),
        stop=And((AllDelivered(), DagsConverged())),
        probes=_DEFAULT_PROBES,
        max_rounds=32,
    )


def _crash_restart(smoke: bool) -> Scenario:
    return Scenario(
        name="crash-restart",
        protocol="counter",
        description="A replicated counter ledger; one server crashes, "
        "loses all volatile state, restarts from WAL + checkpoint and "
        "converges to the same ledger (Theorem 5.1 across a crash).",
        topology=Topology(
            storage=StorageSpec(checkpoint_interval=6, segment_max_bytes=8192)
        ),
        workload=OpenLoopWorkload(
            rate=1, rounds=4 if smoke else 8, shared_label="ledger"
        ),
        faults=FaultSchedule(
            (
                CrashFault(
                    server="s3",
                    crash_round=2 if smoke else 3,
                    restart_round=5 if smoke else 8,
                ),
            )
        ),
        stop=And((AllDelivered(), DagsConverged())),
        probes=_DEFAULT_PROBES + ("down-servers", "wal-bytes"),
        max_rounds=48,
    )


def _equivocator(smoke: bool) -> Scenario:
    return Scenario(
        name="equivocator",
        protocol="brb",
        description="A byzantine seat forks its chain (Figure 3) and "
        "tells each network half a different value; correct servers "
        "absorb both versions and still agree.  Tracing is on so "
        "``trace diff`` across two correct servers pins the fork.",
        topology=Topology(trace=True),
        faults=FaultSchedule(
            (
                ByzantineFault(
                    server="s4", behaviour="equivocator", equivocate_at=(1,)
                ),
            )
        ),
        workload=OpenLoopWorkload(rate=1, rounds=2 if smoke else 3),
        stop=And((AllDelivered(), DagsConverged())),
        probes=_DEFAULT_PROBES,
        max_rounds=32,
    )


def _mixed_faults(smoke: bool) -> Scenario:
    return Scenario(
        name="mixed-faults",
        protocol="brb",
        description="All three fault families in one timeline (n=7, "
        "f=2): an equivocator seat, a crash + restart-from-disk, and a "
        "partition that heals — the 'any schedule of faults' pitch.",
        # prune=True again (PR 4): the coordinated GC horizon freezes
        # during the partition, so the equivocator's delayed fork
        # sibling rehydrates its pruned inputs from the covering
        # checkpoint instead of stalling every honest descendant (the
        # PR 3 below-horizon hazard, closed).
        topology=Topology(
            n=7,
            storage=StorageSpec(checkpoint_interval=8, prune=True),
        ),
        workload=OpenLoopWorkload(rate=1 if smoke else 2, rounds=4 if smoke else 6),
        faults=FaultSchedule(
            (
                ByzantineFault(
                    server="s7", behaviour="equivocator", equivocate_at=(2,)
                ),
                CrashFault(server="s3", crash_round=3, restart_round=7),
                PartitionFault(
                    start_round=2,
                    heal_round=5,
                    group_a=("s1", "s2", "s3"),
                    group_b=("s4", "s5", "s6", "s7"),
                ),
            )
        ),
        stop=And((AllDelivered(), DagsConverged())),
        probes=_DEFAULT_PROBES + ("down-servers",),
        max_rounds=64,
    )


def _saturation(smoke: bool) -> Scenario:
    return Scenario(
        name="saturation",
        protocol="brb",
        description="Open-loop saturation: a fixed high injection rate "
        "regardless of completion; batching keeps wire envelopes near "
        "constant while throughput scales with the rate.",
        workload=OpenLoopWorkload(rate=4 if smoke else 16, rounds=3 if smoke else 6),
        stop=AllDelivered(),
        probes=_DEFAULT_PROBES + ("backlog", "issued"),
        max_rounds=40,
    )


def _closed_loop(smoke: bool) -> Scenario:
    return Scenario(
        name="closed-loop",
        protocol="brb",
        description="Closed-loop latency probe: a fixed number of "
        "clients, each issuing its next request only after the "
        "previous one delivered everywhere.",
        workload=ClosedLoopWorkload(clients=2, total=4 if smoke else 8),
        stop=AllDelivered(),
        probes=_DEFAULT_PROBES,
        max_rounds=64,
    )


def _pruning(smoke: bool) -> Scenario:
    return Scenario(
        name="pruning",
        protocol="counter",
        description="Long-run soak with aggressive checkpoints and "
        "pruning: WAL segments are dropped below the stable frontier "
        "while the ledger keeps advancing.",
        topology=Topology(
            storage=StorageSpec(
                checkpoint_interval=8, segment_max_bytes=4096, prune=True
            )
        ),
        workload=OpenLoopWorkload(
            rate=1, rounds=10 if smoke else 24, shared_label="ledger"
        ),
        stop=And((RoundsElapsed(14 if smoke else 30), AllDelivered())),
        probes=("total-blocks", "wal-bytes", "blocks-interpreted"),
        max_rounds=24 if smoke else 48,
    )


def _gc_horizon_soak(smoke: bool) -> Scenario:
    return Scenario(
        name="gc-horizon-soak",
        protocol="counter",
        description="Long-run ledger soak under an equivocator and a "
        "crash/restart with coordinated-horizon GC: resident "
        "annotations and WAL stay bounded while every honest block is "
        "interpreted everywhere (the scenario behind "
        "benchmarks/bench_gc_horizon.py).",
        topology=Topology(
            n=7,
            storage=StorageSpec(
                checkpoint_interval=8, segment_max_bytes=8192, prune=True
            ),
        ),
        workload=OpenLoopWorkload(
            rate=1, rounds=8 if smoke else 20, shared_label="ledger"
        ),
        faults=FaultSchedule(
            (
                ByzantineFault(
                    server="s7", behaviour="equivocator",
                    equivocate_at=(2,) if smoke else (2, 9),
                ),
                CrashFault(
                    server="s3",
                    crash_round=3 if smoke else 5,
                    restart_round=6 if smoke else 10,
                ),
            )
        ),
        stop=And((RoundsElapsed(10 if smoke else 24), AllDelivered())),
        probes=(
            "total-blocks",
            "resident-states",
            "wal-bytes",
            "below-horizon",
            "rehydrated",
        ),
        max_rounds=20 if smoke else 48,
    )


def _cow_state_growth(smoke: bool) -> Scenario:
    return Scenario(
        name="cow-state-growth",
        protocol="ledger",
        description="Replicated append-only ledger under sustained "
        "load: per-instance state grows with every applied entry, the "
        "workload the structurally-shared state layer keeps cheap "
        "(the scenario behind benchmarks/bench_cow_states.py; run it "
        "with topology.cow=false for the deepcopy-oracle arm).",
        workload=OpenLoopWorkload(
            rate=4 if smoke else 8,
            rounds=8 if smoke else 16,
            shared_label="ledger",
        ),
        stop=And((AllDelivered(), DagsConverged())),
        probes=("total-blocks", "blocks-interpreted", "delivered"),
        max_rounds=32 if smoke else 48,
    )


def _flight_recorder(smoke: bool) -> Scenario:
    return Scenario(
        name="flight-recorder",
        protocol="brb",
        description="Eight servers with the flight recorder on and "
        "storage enabled: every seal/wire/validate/interpret/WAL/"
        "checkpoint event lands in a per-server trace, and the result "
        "carries seal→interpret latency percentiles.  Same seed ⇒ "
        "byte-identical trace files (the observability demo).",
        topology=Topology(
            n=8,
            trace=True,
            storage=StorageSpec(checkpoint_interval=8, segment_max_bytes=8192),
        ),
        workload=OpenLoopWorkload(rate=1 if smoke else 2, rounds=3 if smoke else 6),
        stop=And((AllDelivered(), DagsConverged())),
        probes=_DEFAULT_PROBES
        + (
            "commit-latency-p50",
            "commit-latency-p99",
            "condemned-below-horizon",
        ),
        max_rounds=32,
    )


def _live_smoke(smoke: bool) -> Scenario:
    return Scenario(
        name="live-smoke",
        protocol="brb",
        description="The live-transport twin scenario: fault-free BRB "
        "with tracing on and a fixed tick budget, runnable both on the "
        "simulator and (``run --live``) as four OS processes over "
        "unix-domain sockets.  Same document, same workload schedule, "
        "same per-builder chains — ``trace diff --mode chains`` "
        "between the two arms is silent.",
        topology=Topology(n=4, trace=True),
        workload=OpenLoopWorkload(rate=1 if smoke else 2, rounds=2),
        stop=RoundsElapsed(6 if smoke else 8),
        probes=("total-blocks", "delivered"),
        max_rounds=6 if smoke else 8,
        # Generous but real: four local processes over UDS commit a
        # block in well under five seconds unless the pipeline is
        # actually broken; a fault-free run drops and reconnects
        # nothing (the dial stampede at start-up is not a reconnect).
        slo=SloSpec(commit_p99_ms=5000.0, max_queue_drops=0, max_reconnects=0),
    )


def _metrics_soak(smoke: bool) -> Scenario:
    return Scenario(
        name="metrics-soak",
        protocol="counter",
        description="Telemetry attribution soak: eight servers on the "
        "counter ledger with tracing on; one seat is SIGKILLed mid-run "
        "and respawned, and the cluster MetricsReport must attribute "
        "the disturbance — peer connection losses and reconnects — to "
        "exactly the killed seat.  Runnable on both arms; the live arm "
        "(``run --live``) is the one that exercises the wall-clock "
        "telemetry.",
        topology=Topology(
            n=8,
            trace=True,
            storage=StorageSpec(checkpoint_interval=6, segment_max_bytes=8192),
        ),
        workload=OpenLoopWorkload(
            rate=1, rounds=3 if smoke else 6, shared_label="ledger"
        ),
        faults=FaultSchedule(
            (
                CrashFault(
                    server="s5",
                    crash_round=2,
                    restart_round=4 if smoke else 6,
                ),
            )
        ),
        stop=RoundsElapsed(6 if smoke else 10),
        probes=("total-blocks", "delivered", "down-servers"),
        max_rounds=6 if smoke else 10,
        # The commit p99 rides through the crash window: peers stall at
        # the tick gate (up to tick_timeout) while the victim is down,
        # so the bound covers a couple of gate timeouts plus slack.
        slo=SloSpec(commit_p99_ms=30000.0, max_queue_drops=64),
    )


def _offline_interpretation(smoke: bool) -> Scenario:
    return Scenario(
        name="offline-interpretation",
        protocol="brb",
        description="Build the DAG with interpretation off, then "
        "interpret the whole run after the fact (the paper's off-line "
        "mode): deliveries all land in the final sweep.",
        topology=Topology(auto_interpret=False),
        workload=OpenLoopWorkload(rate=1 if smoke else 2, rounds=2 if smoke else 3),
        stop=RoundsElapsed(6 if smoke else 8),
        probes=("total-blocks", "wire-bytes"),
        max_rounds=6 if smoke else 8,
    )


REGISTRY: dict[str, ScenarioBuilder] = {
    "fault-free": _fault_free,
    "partition-heal": _partition_heal,
    "crash-restart": _crash_restart,
    "equivocator": _equivocator,
    "mixed-faults": _mixed_faults,
    "saturation": _saturation,
    "closed-loop": _closed_loop,
    "pruning": _pruning,
    "gc-horizon-soak": _gc_horizon_soak,
    "cow-state-growth": _cow_state_growth,
    "flight-recorder": _flight_recorder,
    "offline-interpretation": _offline_interpretation,
    "live-smoke": _live_smoke,
    "metrics-soak": _metrics_soak,
}


def names() -> list[str]:
    """Registry scenario names, in catalogue order."""
    return list(REGISTRY)


def get(name: str, smoke: bool = False, seed: int | None = None) -> Scenario:
    """Build a registry scenario, optionally in its smoke variant and
    under a non-default seed."""
    try:
        builder = REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r} (known: {names()})"
        ) from None
    scenario = builder(smoke)
    if seed is not None:
        scenario = scenario.with_seed(seed)
    return scenario
