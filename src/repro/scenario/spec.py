"""The :class:`Scenario` — one declarative, replayable description of a
whole run.

A scenario bundles everything that previously lived in hand-written
driver loops: the protocol (by registry name), the topology (server
count, latency model, round cadence, storage), the workload, the fault
schedule, the stop condition, the probes and the round budget.  It is
a frozen value that round-trips through JSON
(``Scenario.from_json(s.to_json()) == s``) and, for a fixed seed,
replays to an identical :class:`~repro.scenario.result.ScenarioResult`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import ScenarioError
from repro.net.latency import FixedLatency, JitterLatency, LatencyModel
from repro.protocols.base import ProtocolSpec
from repro.protocols.bcb import BcbBroadcast, bcb_protocol
from repro.protocols.brb import Broadcast, brb_protocol
from repro.protocols.counter import Inc, counter_protocol
from repro.protocols.ledger import Append, ledger_protocol
from repro.protocols.pbft import Propose, pbft_protocol
from repro.protocols.phaseking import PkPropose, phase_king_protocol
from repro.scenario.faults import FaultSchedule
from repro.scenario.probes import resolve_probe
from repro.scenario.slo import SloSpec
from repro.scenario.stop import AllDelivered, StopCondition
from repro.scenario.workload import OpenLoopWorkload, Workload
from repro.storage.blockstore import StorageConfig
from repro.types import Request, ServerId, make_servers


# -- protocol registry ---------------------------------------------------------


@dataclass(frozen=True)
class ProtocolEntry:
    """A protocol as scenarios see it: the spec plus a deterministic
    request factory (request ``i`` of any workload, for any seed)."""

    name: str
    spec: ProtocolSpec
    make_request: Callable[[int], Request]


PROTOCOLS: dict[str, ProtocolEntry] = {
    "brb": ProtocolEntry("brb", brb_protocol, lambda i: Broadcast(i)),
    "bcb": ProtocolEntry("bcb", bcb_protocol, lambda i: BcbBroadcast(i)),
    "counter": ProtocolEntry("counter", counter_protocol, lambda i: Inc(i + 1)),
    "ledger": ProtocolEntry("ledger", ledger_protocol, lambda i: Append(i)),
    "pbft": ProtocolEntry("pbft", pbft_protocol, lambda i: Propose(f"v{i}")),
    "phaseking": ProtocolEntry(
        "phaseking", phase_king_protocol, lambda i: PkPropose(i % 2)
    ),
}


def resolve_protocol(name: str) -> ProtocolEntry:
    """Look a protocol up by registry name."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown protocol {name!r} (known: {sorted(PROTOCOLS)})"
        ) from None


# -- topology ------------------------------------------------------------------


@dataclass(frozen=True)
class LatencySpec:
    """Declarative latency model: ``fixed`` (``delay``) or ``jitter``
    (uniform in ``[low, high]``)."""

    model: str = "fixed"
    delay: float = 1.0
    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.model not in ("fixed", "jitter"):
            raise ScenarioError(
                f"unknown latency model {self.model!r} "
                f"(known: ['fixed', 'jitter'])"
            )

    def build(self) -> LatencyModel:
        if self.model == "fixed":
            return FixedLatency(self.delay)
        return JitterLatency(self.low, self.high)

    def to_json_dict(self) -> dict[str, object]:
        if self.model == "fixed":
            return {"model": "fixed", "delay": self.delay}
        return {"model": "jitter", "low": self.low, "high": self.high}

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "LatencySpec":
        try:
            return LatencySpec(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ScenarioError(f"bad latency spec: {exc}") from exc


@dataclass(frozen=True)
class StorageSpec:
    """Declarative persistence knobs (presence = storage on)."""

    checkpoint_interval: int = 32
    segment_max_bytes: int = 64 * 1024
    prune: bool = True
    #: Coordinated-horizon GC (claims + agreed horizon + rehydration).
    #: ``False`` = the seed's Lemma-A.6 full-reference pruner, kept as
    #: the comparison arm for ``bench_gc_horizon``.
    horizon_gc: bool = True
    #: Memory release exempts the last this-many checkpoints' cone
    #: (anti-thrash pin window; ``0`` = release as eagerly as allowed).
    pin_recent_checkpoints: int = 2

    def build(self) -> StorageConfig:
        return StorageConfig(
            checkpoint_interval=self.checkpoint_interval,
            segment_max_bytes=self.segment_max_bytes,
            prune=self.prune,
            horizon_gc=self.horizon_gc,
            pin_recent_checkpoints=self.pin_recent_checkpoints,
        )

    def to_json_dict(self) -> dict[str, object]:
        return {
            "checkpoint_interval": self.checkpoint_interval,
            "segment_max_bytes": self.segment_max_bytes,
            "prune": self.prune,
            "horizon_gc": self.horizon_gc,
            "pin_recent_checkpoints": self.pin_recent_checkpoints,
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "StorageSpec":
        try:
            return StorageSpec(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ScenarioError(f"bad storage spec: {exc}") from exc


@dataclass(frozen=True)
class Topology:
    """Cluster shape and cadence."""

    n: int = 4
    round_duration: float = 6.0
    stagger: float = 0.0
    latency: LatencySpec = field(default_factory=LatencySpec)
    auto_interpret: bool = True
    storage: StorageSpec | None = None
    #: Structurally-shared instance states.  ``False`` runs every shim
    #: on the ``copy.deepcopy`` oracle path — the comparison arm of the
    #: cow-vs-oracle property tests (same convention as
    #: ``incremental=False``).
    cow: bool = True
    #: Record per-server flight-recorder traces (``repro.obs``): typed,
    #: virtual-time-stamped event streams plus block-lifecycle latency
    #: percentiles in the result.  Off by default — the hot path then
    #: pays one attribute check per instrumentation site.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ScenarioError(f"topology needs n ≥ 1, got {self.n}")

    def servers(self) -> list[ServerId]:
        return make_servers(self.n)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "n": self.n,
            "round_duration": self.round_duration,
            "stagger": self.stagger,
            "latency": self.latency.to_json_dict(),
            "auto_interpret": self.auto_interpret,
            "storage": None if self.storage is None else self.storage.to_json_dict(),
            "cow": self.cow,
            "trace": self.trace,
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "Topology":
        payload = dict(data)
        latency = payload.pop("latency", None)
        storage = payload.pop("storage", None)
        try:
            return Topology(
                latency=(
                    LatencySpec()
                    if latency is None
                    else LatencySpec.from_json_dict(latency)  # type: ignore[arg-type]
                ),
                storage=(
                    None
                    if storage is None
                    else StorageSpec.from_json_dict(storage)  # type: ignore[arg-type]
                ),
                **payload,  # type: ignore[arg-type]
            )
        except TypeError as exc:
            raise ScenarioError(f"bad topology: {exc}") from exc


# -- the scenario itself -------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One declarative, seed-deterministic description of a whole run."""

    name: str
    protocol: str
    description: str = ""
    seed: int = 0
    topology: Topology = field(default_factory=Topology)
    workload: Workload = field(default_factory=OpenLoopWorkload)
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    stop: StopCondition = field(default_factory=AllDelivered)
    probes: tuple[str, ...] = ()
    max_rounds: int = 64
    settle_rounds: int = 0
    #: Wall-clock SLO bounds, evaluated on live runs only (see
    #: :mod:`repro.scenario.slo`).  Ignored by the simulated arm, so a
    #: bounded scenario stays byte-deterministic there.
    slo: SloSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "probes", tuple(self.probes))
        resolve_protocol(self.protocol)
        for probe in self.probes:
            resolve_probe(probe)
        self.faults.validate(self.topology.servers())
        sender = self.workload.sender
        if sender.startswith("fixed:"):
            pinned = sender.split(":", 1)[1]
            if pinned not in self.topology.servers():
                raise ScenarioError(
                    f"workload sender {sender!r} names a server outside the "
                    f"topology (configured: {self.topology.servers()})"
                )
            byz = self.faults.byzantine_servers()
            if pinned in byz:
                raise ScenarioError(
                    f"workload sender {sender!r} is a byzantine seat; "
                    f"requests enter at correct servers"
                )
        elif sender not in ("round-robin", "random"):
            raise ScenarioError(
                f"unknown sender policy {sender!r} (expected 'round-robin', "
                f"'random', or 'fixed:<server>')"
            )
        if self.max_rounds < 1:
            raise ScenarioError(f"max_rounds must be ≥ 1, got {self.max_rounds}")
        if self.settle_rounds < 0:
            raise ScenarioError(
                f"settle_rounds must be ≥ 0, got {self.settle_rounds}"
            )

    def with_seed(self, seed: int) -> "Scenario":
        """The same scenario under a different seed."""
        return dataclasses.replace(self, seed=seed)

    def needs_storage(self) -> bool:
        return self.topology.storage is not None or self.faults.needs_storage()

    # -- JSON ------------------------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "protocol": self.protocol,
            "description": self.description,
            "seed": self.seed,
            "topology": self.topology.to_json_dict(),
            "workload": self.workload.to_json_dict(),
            "faults": self.faults.to_json_list(),
            "stop": self.stop.to_json_dict(),
            "probes": list(self.probes),
            "max_rounds": self.max_rounds,
            "settle_rounds": self.settle_rounds,
            "slo": None if self.slo is None else self.slo.to_json_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "Scenario":
        payload = dict(data)
        try:
            topology = payload.pop("topology", None)
            workload = payload.pop("workload", None)
            faults = payload.pop("faults", None)
            stop = payload.pop("stop", None)
            probes = payload.pop("probes", ())
            slo = payload.pop("slo", None)
            return Scenario(
                topology=(
                    Topology()
                    if topology is None
                    else Topology.from_json_dict(topology)  # type: ignore[arg-type]
                ),
                workload=(
                    OpenLoopWorkload()
                    if workload is None
                    else Workload.from_json_dict(workload)  # type: ignore[arg-type]
                ),
                faults=(
                    FaultSchedule()
                    if faults is None
                    else FaultSchedule.from_json_list(faults)  # type: ignore[arg-type]
                ),
                stop=(
                    AllDelivered()
                    if stop is None
                    else StopCondition.from_json_dict(stop)  # type: ignore[arg-type]
                ),
                probes=tuple(probes),  # type: ignore[arg-type]
                slo=None if slo is None else SloSpec.from_json_dict(slo),  # type: ignore[arg-type]
                **payload,  # type: ignore[arg-type]
            )
        except TypeError as exc:
            raise ScenarioError(f"bad scenario document: {exc}") from exc

    @staticmethod
    def from_json(text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ScenarioError("scenario JSON must be an object")
        return Scenario.from_json_dict(data)
