"""Compile a :class:`~repro.scenario.spec.Scenario` into live node configs.

The same declarative document drives both arms: the simulator executes
it round by round on virtual time, and this module lowers it onto
:class:`~repro.runtime.live.node.NodeConfig` values for one-process-
per-server execution over real sockets (``run --live``).

The essential lowering step is the **workload schedule**.  The
simulator's :class:`~repro.scenario.workload.WorkloadDriver` decides,
round by round, which server injects which request — a deterministic
function of the scenario seed.  Live nodes are separate processes that
cannot share a driver, so the compiler *replays* the driver here
against a recording stub and ships each server its explicit
``(tick, label, index)`` schedule.  Both arms therefore inject
identical requests at identical chain positions, which is half of what
makes ``trace diff --mode chains`` between the arms silent (the other
half is the node's lockstep gate).

Live runs support the crash-inclusive subset of the scenario language:
partition, byzantine, link-loss and duplication faults need the
simulator's ability to schedule drops and hijacks, but a
:class:`~repro.scenario.faults.CrashFault` lowers onto the *real*
crash surface — :func:`compile_live_crashes` turns it into a
:class:`~repro.runtime.live.cluster.LiveCrash` (SIGKILL once the
victim's own tick reaches ``crash_round``, respawn after a wall-clock
downtime standing in for the virtual crash→restart span).  The stop
condition must contain a :class:`~repro.scenario.stop.RoundsElapsed`
bound — a fixed tick budget is what makes the two arms' chain
*lengths* comparable.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.errors import ScenarioError
from repro.runtime.live.cluster import LiveCrash
from repro.runtime.live.node import NodeConfig
from repro.scenario.faults import CrashFault
from repro.scenario.spec import Scenario
from repro.scenario.stop import RoundsElapsed, StopCondition, _Composite
from repro.scenario.workload import WorkloadDriver
from repro.types import ServerId


def live_rounds(stop: StopCondition, max_rounds: int) -> int:
    """The fixed tick budget: the smallest ``RoundsElapsed`` bound in
    the stop condition, or ``max_rounds`` when there is none."""
    bounds = _collect_rounds(stop)
    return min(bounds) if bounds else max_rounds


def _collect_rounds(stop: StopCondition) -> list[int]:
    if isinstance(stop, RoundsElapsed):
        return [stop.rounds]
    if isinstance(stop, _Composite):
        found: list[int] = []
        for condition in stop.conditions:
            found.extend(_collect_rounds(condition))
        return found
    return []


class _RecordingStub:
    """Just enough of a ``Cluster`` for ``WorkloadDriver.before_round``."""

    class _NoCrashes:
        @staticmethod
        def crashes_at(round_index: int) -> tuple:
            return ()

    class _Sim:
        now = 0.0

    def __init__(self, servers: list[ServerId]) -> None:
        self.correct_servers = list(servers)
        self.crash_plan = self._NoCrashes()
        self.sim = self._Sim()
        self.injected: list[tuple[ServerId, str, int]] = []

    def request(self, server: ServerId, label: str, request: object) -> None:
        # ``make_request`` below is the identity on the index, so the
        # recorded "request" is the workload index itself.
        self.injected.append((server, str(label), int(request)))  # type: ignore[arg-type]


def compile_workload_schedule(
    scenario: Scenario, rounds: int
) -> tuple[dict[ServerId, list[tuple[int, str, int]]], list[tuple[str, int]]]:
    """Replay the workload driver; return per-server schedules and the
    ``(label, minimum)`` delivery expectations."""
    servers = scenario.topology.servers()
    stub = _RecordingStub(servers)
    driver = WorkloadDriver(
        scenario.workload,
        make_request=lambda index: index,
        # The exact derivation the simulated runner uses — same seed,
        # same picks, same schedule.
        rng=random.Random(scenario.seed * 1_000_003 + 17),
    )
    schedules: dict[ServerId, list[tuple[int, str, int]]] = {
        server: [] for server in servers
    }
    for round_index in range(rounds):
        before = len(stub.injected)
        driver.before_round(stub, round_index)  # type: ignore[arg-type]
        for server, label, index in stub.injected[before:]:
            schedules[server].append((round_index, label, index))
    shared = scenario.workload.shared_label
    if shared is not None:
        expected = [(shared, len(stub.injected))]
    else:
        expected = [(label, 1) for _, label, _ in stub.injected]
    return schedules, expected


def compile_live_configs(
    scenario: Scenario,
    run_dir: str | Path,
    *,
    trace_dir: str | Path | None = None,
    storage_root: str | Path | None = None,
    tick_timeout: float = 10.0,
    settle_timeout: float = 30.0,
) -> dict[ServerId, NodeConfig]:
    """Lower ``scenario`` onto one :class:`NodeConfig` per server.

    Sockets (UDS), status files and storage directories all live under
    ``run_dir`` unless redirected; trace export is enabled when
    ``trace_dir`` is given (one ``<server>.jsonl`` each, the same
    layout the simulated runner exports).
    """
    if any(not isinstance(e, CrashFault) for e in scenario.faults.events):
        raise ScenarioError(
            "live execution supports fault-free and crash-fault scenarios "
            "only; partition/byzantine/link faults need the simulator's "
            "scheduled drops and hijacks"
        )
    run_dir = Path(run_dir)
    rounds = live_rounds(scenario.stop, scenario.max_rounds)
    schedules, expected = compile_workload_schedule(scenario, rounds)
    last_injection = max(
        (tick for entries in schedules.values() for tick, _, _ in entries),
        default=-1,
    )
    if last_injection >= rounds:
        raise ScenarioError(
            f"workload injects at round {last_injection} but the live tick "
            f"budget is {rounds}; raise the RoundsElapsed bound"
        )
    servers = scenario.topology.servers()
    addresses = {
        str(server): f"unix:{run_dir / (str(server) + '.sock')}"
        for server in servers
    }
    needs_storage = scenario.needs_storage()
    if needs_storage and storage_root is None:
        storage_root = run_dir / "storage"
    trace = trace_dir is not None or scenario.topology.trace
    if trace and trace_dir is None:
        trace_dir = run_dir / "trace"
    configs: dict[ServerId, NodeConfig] = {}
    for server in servers:
        configs[server] = NodeConfig(
            server=str(server),
            servers=tuple(str(s) for s in servers),
            protocol=scenario.protocol,
            addresses=addresses,
            seed=scenario.seed,
            max_ticks=rounds,
            tick_timeout=tick_timeout,
            settle_timeout=settle_timeout,
            workload=tuple(schedules[server]),
            expected=tuple(expected),
            storage_dir=(
                str(Path(storage_root) / str(server)) if needs_storage else None  # type: ignore[arg-type]
            ),
            trace_path=(
                str(Path(trace_dir) / f"{server}.jsonl") if trace else None  # type: ignore[arg-type]
            ),
            status_path=str(run_dir / f"{server}.status.json"),
            metrics_path=str(run_dir / f"{server}.metrics.jsonl"),
        )
    return configs


#: Wall-clock downtime per virtual crash→restart round (seconds).  A
#: restarted node recovers from disk and beacon-chases the gap, so the
#: stand-in only needs to be long enough to be observable.
DOWN_SECONDS_PER_ROUND = 1.0


def compile_live_crashes(scenario: Scenario) -> tuple[LiveCrash, ...]:
    """Lower the scenario's crash faults onto the real kill surface."""
    crashes = []
    for event in scenario.faults.crash_events():
        if event.restart_round is None:
            down: float | None = None
        else:
            down = max(
                DOWN_SECONDS_PER_ROUND,
                (event.restart_round - event.crash_round)
                * DOWN_SECONDS_PER_ROUND,
            )
        crashes.append(
            LiveCrash(
                server=event.server,
                kill_at_tick=event.crash_round,
                down_seconds=down,
            )
        )
    return tuple(crashes)
