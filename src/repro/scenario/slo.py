"""Declarative wall-clock SLOs, evaluated against a live run's telemetry.

A :class:`SloSpec` rides in the Scenario JSON document (``"slo"``) and
names bounds on what the live arm actually measured: the cross-process
lifecycle join (seal→interpret wall-clock percentiles) and the merged
cluster :class:`~repro.obs.metrics.MetricsReport` (queue drops,
attributable reconnects).  The runner evaluates it into a
:class:`SloReport` of pass/fail verdicts carried in
``ScenarioResult.slo`` — which is what the CI gate asserts on.

Missing data fails the verdict: a bound on ``commit_p99_ms`` with no
lifecycle samples is a broken pipeline, not a green light.

Simulated runs never evaluate SLOs (virtual time has no wall-clock
latency), so a scenario with an ``slo`` block stays byte-deterministic
on the simulated arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ScenarioError
from repro.obs.lifecycle import LifecycleStats
from repro.obs.metrics import MetricsReport

__all__ = ["SloReport", "SloSpec", "SloVerdict"]


@dataclass(frozen=True)
class SloSpec:
    """Bounds a live run must meet; ``None`` means "not bounded".

    - ``commit_p99_ms`` — p99 of the wall-clock seal→interpret stage
      (a block's end-to-end commit latency across processes).
    - ``receive_p99_ms`` — p99 of seal→first-receive (pure wire+queue
      latency, before validation).
    - ``max_queue_drops`` — total oldest-dropped envelopes across every
      per-peer transport queue.
    - ``max_reconnects`` — total attributable reconnects (re-established
      after losing a live connection; the initial dial stampede does
      not count).
    """

    commit_p99_ms: float | None = None
    receive_p99_ms: float | None = None
    max_queue_drops: int | None = None
    max_reconnects: int | None = None

    def __post_init__(self) -> None:
        for name in ("commit_p99_ms", "receive_p99_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ScenarioError(f"slo.{name} must be positive, got {value}")
        for name in ("max_queue_drops", "max_reconnects"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ScenarioError(f"slo.{name} must be >= 0, got {value}")

    def bounds(self) -> list[tuple[str, float]]:
        return [
            (name, getattr(self, name))
            for name in (
                "commit_p99_ms",
                "receive_p99_ms",
                "max_queue_drops",
                "max_reconnects",
            )
            if getattr(self, name) is not None
        ]

    def evaluate(
        self,
        lifecycle: LifecycleStats | None,
        metrics: MetricsReport | None,
    ) -> "SloReport":
        verdicts = []
        for name, bound in self.bounds():
            observed = self._observe(name, lifecycle, metrics)
            verdicts.append(
                SloVerdict(
                    name=name,
                    bound=float(bound),
                    observed=observed,
                    ok=observed is not None and observed <= bound,
                )
            )
        return SloReport(verdicts=tuple(verdicts))

    @staticmethod
    def _observe(
        name: str,
        lifecycle: LifecycleStats | None,
        metrics: MetricsReport | None,
    ) -> float | None:
        if name == "commit_p99_ms":
            if lifecycle is None or lifecycle.seal_to_interpret.count == 0:
                return None
            return lifecycle.seal_to_interpret.p99 * 1000.0
        if name == "receive_p99_ms":
            if lifecycle is None or lifecycle.seal_to_first_receive.count == 0:
                return None
            return lifecycle.seal_to_first_receive.p99 * 1000.0
        if metrics is None:
            return None
        if name == "max_queue_drops":
            return float(metrics.merged.total("transport.queue-drops"))
        if name == "max_reconnects":
            return float(metrics.merged.total("transport.reconnects"))
        raise ScenarioError(f"unknown SLO bound {name!r}")

    def to_json_dict(self) -> dict[str, object]:
        return {name: bound for name, bound in self.bounds()}

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "SloSpec":
        known = {
            "commit_p99_ms",
            "receive_p99_ms",
            "max_queue_drops",
            "max_reconnects",
        }
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"unknown SLO field(s): {', '.join(sorted(unknown))}"
            )
        try:
            return SloSpec(
                commit_p99_ms=(
                    None
                    if data.get("commit_p99_ms") is None
                    else float(data["commit_p99_ms"])  # type: ignore[arg-type]
                ),
                receive_p99_ms=(
                    None
                    if data.get("receive_p99_ms") is None
                    else float(data["receive_p99_ms"])  # type: ignore[arg-type]
                ),
                max_queue_drops=(
                    None
                    if data.get("max_queue_drops") is None
                    else int(data["max_queue_drops"])  # type: ignore[arg-type]
                ),
                max_reconnects=(
                    None
                    if data.get("max_reconnects") is None
                    else int(data["max_reconnects"])  # type: ignore[arg-type]
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"malformed SLO spec: {exc}") from exc


@dataclass(frozen=True)
class SloVerdict:
    """One bound's outcome.  ``observed is None`` means the telemetry
    that would prove the bound never arrived — which fails it."""

    name: str
    bound: float
    observed: float | None
    ok: bool

    def to_json_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "bound": self.bound,
            "observed": self.observed,
            "ok": self.ok,
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "SloVerdict":
        try:
            observed = data.get("observed")
            return SloVerdict(
                name=str(data["name"]),
                bound=float(data["bound"]),  # type: ignore[arg-type]
                observed=None if observed is None else float(observed),  # type: ignore[arg-type]
                ok=bool(data["ok"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"malformed SLO verdict: {exc}") from exc


@dataclass(frozen=True)
class SloReport:
    """Every verdict from one evaluation; the gate checks ``passed``."""

    verdicts: tuple[SloVerdict, ...] = ()

    @property
    def passed(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def to_json_dict(self) -> dict[str, object]:
        return {
            "passed": self.passed,
            "verdicts": [v.to_json_dict() for v in self.verdicts],
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "SloReport":
        try:
            return SloReport(
                verdicts=tuple(
                    SloVerdict.from_json_dict(v) for v in data.get("verdicts", ())  # type: ignore[union-attr]
                )
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"malformed SLO report: {exc}") from exc

    def render(self) -> str:
        lines = []
        for v in self.verdicts:
            observed = "n/a" if v.observed is None else f"{v.observed:.1f}"
            state = "ok" if v.ok else "FAIL"
            lines.append(f"  {v.name:<18} bound {v.bound:<10.1f} "
                         f"observed {observed:<10} {state}")
        return "\n".join(lines)
