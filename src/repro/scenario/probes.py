"""Per-round probes — named time series sampled while a scenario runs.

A probe is a pure observation: after every round the runner samples
each configured probe and appends the value to the result's series for
that probe.  Probes are referenced by name in the scenario JSON, so a
replayed scenario regenerates byte-identical series.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ScenarioError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.runner import ScenarioRunner

#: A probe samples one number from a live run.
ProbeFn = Callable[["ScenarioRunner"], float]

PROBES: dict[str, ProbeFn] = {
    "total-blocks": lambda r: float(r.cluster.total_blocks()),
    "wire-messages": lambda r: float(r.cluster.sim.metrics.messages),
    "wire-bytes": lambda r: float(r.cluster.sim.metrics.bytes),
    "backlog": lambda r: float(
        sum(shim.backlog() for shim in r.cluster.shims.values())
    ),
    "delivered": lambda r: float(r.driver.delivered_count),
    "issued": lambda r: float(r.driver.issued),
    "down-servers": lambda r: float(len(r.cluster.down)),
    "blocks-interpreted": lambda r: float(
        r.cluster.interpreter_snapshot().blocks_interpreted
    ),
    "wal-bytes": lambda r: float(r.cluster.storage_snapshot().wal_bytes),
    # Coordinated-GC health (PR 4): annotations resident in memory
    # (the quantity the horizon bounds), blocks stalled below a pruned
    # predecessor, and successful checkpoint rehydrations.
    "resident-states": lambda r: float(
        sum(s.interpreter.resident_states for s in r.cluster.shims.values())
    ),
    "below-horizon": lambda r: float(
        sum(s.interpreter.below_horizon for s in r.cluster.shims.values())
    ),
    "rehydrated": lambda r: float(
        sum(s.interpreter.rehydrated for s in r.cluster.shims.values())
    ),
    #: Arrivals condemned by the agreed-horizon validity rule; the
    #: counter always existed in the snapshot but was unreachable from
    #: scenario JSON until now.
    "condemned-below-horizon": lambda r: float(
        sum(
            s.gossip.metrics.condemned_below_horizon
            for s in r.cluster.shims.values()
        )
    ),
    # Block-lifecycle commit latency (seal → interpret, virtual time),
    # sampled from the flight recorder's lifecycle index.  0.0 when the
    # topology does not enable tracing.
    "commit-latency-p50": lambda r: _commit_latency(r, 0.50),
    "commit-latency-p99": lambda r: _commit_latency(r, 0.99),
}


def _commit_latency(runner: "ScenarioRunner", fraction: float) -> float:
    tracer = runner.cluster.tracer
    if tracer is None:
        return 0.0
    return float(tracer.lifecycle.commit_latency(fraction))


def resolve_probe(name: str) -> ProbeFn:
    """Look a probe up by name, failing with the known names."""
    try:
        return PROBES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown probe {name!r} (known: {sorted(PROBES)})"
        ) from None
