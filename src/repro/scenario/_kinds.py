"""Shared plumbing for the ``kind``-tagged JSON unions.

Workloads, fault events and stop conditions all serialize as
``{"kind": ..., **payload}`` with a per-family registry of concrete
classes.  The registration (``__init_subclass__``) stays in each base
class; the decode half — registry lookup with a helpful unknown-kind
error, payload extraction, and TypeError wrapping — lives here once so
the three deserializers cannot drift apart.
"""

from __future__ import annotations

from typing import Any, Mapping, TypeVar

from repro.errors import ScenarioError

T = TypeVar("T")


def decode_kind(
    registry: Mapping[str, type],
    base: type[T],
    data: Mapping[str, Any],
    noun: str,
) -> T:
    """Decode one ``{"kind": ..., **payload}`` document.

    Concrete classes may override ``_from_payload(payload)`` when their
    JSON shape is not plain constructor kwargs (e.g. nested unions).
    """
    kind = data.get("kind")
    cls = registry.get(str(kind))
    if cls is None or cls is base:
        known = sorted(k for k, v in registry.items() if v is not base)
        raise ScenarioError(f"unknown {noun} kind {kind!r} (known: {known})")
    payload = {k: v for k, v in data.items() if k != "kind"}
    try:
        return cls._from_payload(payload)  # type: ignore[attr-defined,no-any-return]
    except TypeError as exc:
        raise ScenarioError(f"bad {kind!r} {noun}: {exc}") from exc
