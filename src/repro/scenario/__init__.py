"""The Scenario API — one declarative, replayable description of a run.

The run-facing redesign of the runtime: instead of coordinating
``FaultPlan`` + ``CrashPlan`` + an adversaries map and hand-writing
``cluster.request(...)`` / ``run_until`` loops, describe the whole run
as one :class:`Scenario` value — protocol, topology, workload, a
unified fault timeline, stop conditions and probes — and execute it
with :class:`ScenarioRunner` (or :func:`run_scenario`), getting back a
typed :class:`ScenarioResult`.

Scenarios round-trip through JSON and replay deterministically for a
fixed seed.  A catalogue of named scenarios lives in
:mod:`repro.scenario.registry`; ``python -m repro.scenario`` lists,
runs and diffs them.

Quickstart::

    from repro.scenario import registry, run_scenario

    result = run_scenario(registry.get("fault-free"))
    print(result.latency_rounds.p50, result.throughput)
"""

from repro.scenario import registry
from repro.scenario.faults import (
    ByzantineFault,
    CrashFault,
    DuplicationFault,
    FaultEvent,
    FaultSchedule,
    LinkLossFault,
    PartitionFault,
)
from repro.scenario.probes import PROBES
from repro.scenario.result import LatencyStats, ScenarioResult, percentile
from repro.scenario.runner import ScenarioRunner, run_scenario
from repro.scenario.slo import SloReport, SloSpec, SloVerdict
from repro.scenario.spec import (
    PROTOCOLS,
    LatencySpec,
    ProtocolEntry,
    Scenario,
    StorageSpec,
    Topology,
)
from repro.scenario.stop import (
    AllDelivered,
    And,
    DagsConverged,
    Or,
    RoundsElapsed,
    StopCondition,
)
from repro.scenario.workload import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    Workload,
    WorkloadDriver,
)

__all__ = [
    "AllDelivered",
    "And",
    "ByzantineFault",
    "ClosedLoopWorkload",
    "CrashFault",
    "DagsConverged",
    "DuplicationFault",
    "FaultEvent",
    "FaultSchedule",
    "LatencySpec",
    "LatencyStats",
    "LinkLossFault",
    "OpenLoopWorkload",
    "Or",
    "PROBES",
    "PROTOCOLS",
    "PartitionFault",
    "ProtocolEntry",
    "RoundsElapsed",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SloReport",
    "SloSpec",
    "SloVerdict",
    "StopCondition",
    "StorageSpec",
    "Topology",
    "Workload",
    "WorkloadDriver",
    "percentile",
    "registry",
    "run_scenario",
]
