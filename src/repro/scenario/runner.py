"""Executes a :class:`~repro.scenario.spec.Scenario` on a
:class:`~repro.runtime.cluster.Cluster`.

The runner is the only imperative piece of the scenario layer: it
compiles the fault schedule onto the runtime's three fault knobs,
builds the cluster, drives rounds while injecting the workload and the
byzantine equivocation cues, evaluates the stop condition, samples
probes, and folds everything into a typed
:class:`~repro.scenario.result.ScenarioResult`.

Determinism: the cluster simulation derives all randomness from the
scenario seed, and the workload RNG is derived from the same seed, so
the same scenario value replays to the same result (the CLI's ``diff``
and the determinism regression test rely on this).
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.errors import ScenarioError
from repro.obs.export import read_jsonl
from repro.obs.lifecycle import LifecycleIndex, LifecycleStats
from repro.obs.metrics import MetricsRegistry, MetricsReport
from repro.runtime.cluster import Cluster, ClusterConfig
from repro.runtime.snapshots import (
    InterpreterSnapshot,
    StorageSnapshot,
    WireSnapshot,
)
from repro.storage.blockstore import StorageConfig
from repro.scenario.probes import resolve_probe
from repro.scenario.result import LatencyStats, ScenarioResult
from repro.scenario.spec import Scenario, resolve_protocol
from repro.scenario.workload import WorkloadDriver
from repro.types import Label, ServerId


def _sim_metrics(
    wire: WireSnapshot,
    interpreter: InterpreterSnapshot,
    storage: StorageSnapshot,
) -> MetricsReport:
    """The simulated arm's metrics view: the deterministic run counters
    re-expressed as one merged snapshot, so ``metrics report``/``diff``
    work on either arm and the export is byte-identical per seed."""
    registry = MetricsRegistry(server="sim")
    counters = {
        "wire.messages": wire.messages,
        "wire.bytes": wire.bytes,
        "wire.delivered": wire.delivered,
        "wire.dropped": wire.dropped,
        "interpreter.blocks-interpreted": interpreter.blocks_interpreted,
        "interpreter.messages-delivered": interpreter.messages_delivered,
        "interpreter.request-steps": interpreter.request_steps,
        "interpreter.below-horizon": interpreter.below_horizon,
        "storage.wal-appends": storage.wal_appends,
        "storage.wal-bytes": storage.wal_bytes,
        "storage.checkpoints-written": storage.checkpoints_written,
        "storage.checkpoint-bytes": storage.checkpoint_bytes,
    }
    for name, value in counters.items():
        registry.counter(name).inc(int(value))
    return MetricsReport.from_snapshots({"sim": registry.snapshot()})


class ScenarioRunner:
    """One scenario, one cluster, one result.

    Parameters
    ----------
    scenario:
        The declarative run description.
    storage_root:
        Directory for per-server durable state when the scenario needs
        storage (crash faults or an explicit storage spec).  ``None``
        uses a temporary directory that is removed after :meth:`run`.
    trace_dir:
        When given, tracing is forced on (regardless of
        ``topology.trace``) and every server's flight-recorder events
        are exported to ``<trace_dir>/<server>.jsonl`` at the end of
        :meth:`run`.  Same scenario + seed ⇒ byte-identical files.
    live:
        When true, :meth:`run` executes the scenario on a
        :class:`~repro.runtime.live.cluster.LiveCluster` — one OS
        process per server over unix-domain sockets — instead of the
        virtual-time simulator.  Only the fault-free subset of the
        scenario language is supported (see
        :func:`~repro.scenario.live.compile_live_configs`), and the
        result carries wall-clock figures rather than virtual time.
        No :attr:`cluster` is built in this mode.

    After :meth:`run` the :attr:`cluster` stays accessible, so examples
    and tests can inspect DAGs, shims and recovery reports beyond what
    the result carries.  When the runner owned a temporary storage root
    it is removed at the end of :meth:`run` and the shims are detached
    from storage — the cluster remains drivable, in RAM only.
    """

    def __init__(
        self,
        scenario: Scenario,
        storage_root: str | Path | None = None,
        trace_dir: str | Path | None = None,
        live: bool = False,
    ) -> None:
        self.scenario = scenario
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.live = live
        self.entry = resolve_protocol(scenario.protocol)
        self._storage_root = Path(storage_root) if storage_root else None
        self._owns_storage = False
        self.rounds_run = 0
        self.result: ScenarioResult | None = None
        self._probe_series: dict[str, list[float]] = {
            name: [] for name in scenario.probes
        }
        #: Raw :class:`~repro.runtime.live.cluster.LiveRunResult` of the
        #: last live run (benchmarks read per-node statuses from it).
        self.live_result = None
        if live:
            # Live runs spawn subprocesses; nothing to assemble here.
            self.cluster = None  # type: ignore[assignment]
            return
        self.compiled = scenario.faults.compile(
            scenario.topology.servers(), scenario.topology.round_duration
        )
        try:
            self.cluster = self._build_cluster()
        except BaseException:
            # Don't leak the temp root we just created for this run.
            if self._owns_storage and self._storage_root is not None:
                shutil.rmtree(self._storage_root, ignore_errors=True)
            raise
        self.driver = WorkloadDriver(
            scenario.workload,
            self.entry.make_request,
            # Derived from the scenario seed alone: replays identically.
            rng=random.Random(scenario.seed * 1_000_003 + 17),
        )

    # -- construction ----------------------------------------------------------

    def _build_cluster(self) -> Cluster:
        scenario = self.scenario
        topology = scenario.topology
        storage_dir: Path | None = None
        if scenario.needs_storage():
            if self._storage_root is None:
                self._storage_root = Path(
                    tempfile.mkdtemp(prefix=f"scenario-{scenario.name}-")
                )
                self._owns_storage = True
            else:
                # A scenario run is a *fresh* execution; shim
                # construction over leftover per-server state would
                # silently become a restart-from-disk of some earlier
                # run, contaminating the result and breaking the
                # same-seed determinism guarantee.
                stale = [
                    str(s)
                    for s in topology.servers()
                    if (self._storage_root / str(s)).exists()
                ]
                if stale:
                    raise ScenarioError(
                        f"storage root {self._storage_root} already holds "
                        f"server state for {stale}; a scenario run needs a "
                        f"fresh directory (in-run restarts are expressed as "
                        f"CrashFault events, not by reusing a root)"
                    )
            storage_dir = self._storage_root
        storage_spec = topology.storage
        config = ClusterConfig(
            round_duration=topology.round_duration,
            stagger=topology.stagger,
            latency=topology.latency.build(),
            seed=scenario.seed,
            auto_interpret=topology.auto_interpret,
            cow=topology.cow,
            storage_dir=storage_dir,
            storage=(
                storage_spec.build() if storage_spec is not None else StorageConfig()
            ),
            trace=topology.trace or self.trace_dir is not None,
        )
        return Cluster(
            self.entry.spec,
            servers=topology.servers(),
            config=config,
            faults=self.compiled.fault_plan,
            adversaries={
                ServerId(s): factory
                for s, factory in self.compiled.adversaries.items()
            },
            crash_plan=self.compiled.crash_plan,
        )

    # -- byzantine cues --------------------------------------------------------

    def _inject_cues(self, round_index: int) -> None:
        """Equivocator seats submit their conflicting request pair at
        the scheduled rounds: one value to each half of the network
        (Figure 3 made to happen on demand)."""
        for cue_round, server in self.compiled.equivocation_cues:
            if cue_round != round_index:
                continue
            adversary = self.cluster.adversaries[ServerId(server)]
            label = Label(f"byz-{server}-{cue_round}")
            # Indices far above any workload index: the two values are
            # distinct from each other and from every honest request.
            base = 1_000_000 + 2 * cue_round
            adversary.request(label, self.entry.make_request(base))  # type: ignore[attr-defined]
            adversary.fork_request(label, self.entry.make_request(base + 1))  # type: ignore[attr-defined]
            if self.cluster.tracer is not None:
                self.cluster.tracer.recorder(ServerId(server)).emit(
                    "fault-injected", fault="equivocation-cue", round=cue_round
                )

    # -- driving ---------------------------------------------------------------

    def _one_round(self, inject: bool) -> None:
        index = self.cluster.rounds_run
        if inject:
            self.driver.before_round(self.cluster, index)
            self._inject_cues(index)
        self.cluster.round()
        self.driver.after_round(self.cluster, index)
        self.rounds_run = self.cluster.rounds_run
        for name, series in self._probe_series.items():
            series.append(resolve_probe(name)(self))

    def run(self) -> ScenarioResult:
        """Drive the scenario to its stop condition and build the result."""
        if self.live:
            return self._run_live()
        scenario = self.scenario
        start_wall = time.perf_counter()
        stopped_by = "stop-condition"
        try:
            while True:
                if scenario.stop.satisfied(self):
                    break
                if self.rounds_run >= scenario.max_rounds:
                    stopped_by = "max-rounds"
                    break
                self._one_round(inject=True)
            for _ in range(scenario.settle_rounds):
                self._one_round(inject=False)
            if not scenario.topology.auto_interpret:
                # Off-line mode: the whole DAG is interpreted only now.
                for shim in self.cluster.shims.values():
                    shim.interpret_now()
            self.driver.final_sweep(self.cluster, max(0, self.rounds_run - 1))
            self.result = self._collect(stopped_by, time.perf_counter() - start_wall)
            if self.trace_dir is not None and self.cluster.tracer is not None:
                self.cluster.tracer.export(self.trace_dir)
            return self.result
        finally:
            if self._owns_storage and self._storage_root is not None:
                # The temp root is gone after this, so detach storage
                # from the surviving shims first: the cluster stays
                # inspectable and drivable post-run (in RAM), instead
                # of exploding on the next checkpoint or WAL append.
                for shim in self.cluster.shims.values():
                    shim.storage = None
                shutil.rmtree(self._storage_root, ignore_errors=True)

    # -- live execution --------------------------------------------------------

    def _run_live(self) -> ScenarioResult:
        """Execute the scenario on a multi-process live cluster.

        The same declarative document, lowered onto per-server
        :class:`~repro.runtime.live.node.NodeConfig` values and run as
        one OS process per server over unix-domain sockets.  The result
        mirrors the simulated shape where it can (requests, wire bytes,
        blocks, convergence); virtual-time figures stay zero and
        ``stopped_by`` reports ``live-complete`` / ``live-timeout``.
        """
        from repro.runtime.live.cluster import LiveCluster
        from repro.scenario.live import (
            compile_live_configs,
            compile_live_crashes,
            compile_workload_schedule,
            live_rounds,
        )

        scenario = self.scenario
        rounds = live_rounds(scenario.stop, scenario.max_rounds)
        schedules, expected = compile_workload_schedule(scenario, rounds)
        issued = sum(len(entries) for entries in schedules.values())
        crashes = compile_live_crashes(scenario)
        run_dir = Path(tempfile.mkdtemp(prefix=f"live-{scenario.name}-"))
        live_lifecycle: LifecycleStats | None = None
        try:
            configs = compile_live_configs(
                scenario,
                run_dir,
                trace_dir=self.trace_dir,
                storage_root=self._storage_root,
            )
            some = next(iter(configs.values()))
            # Worst case every tick stalls to its gate timeout, then the
            # fleet still needs the settle window; pad for process spawn
            # and for scheduled crash downtime.
            down_budget = sum(c.down_seconds or 0.0 for c in crashes)
            timeout = (
                15.0
                + rounds * some.tick_timeout
                + some.settle_timeout
                + down_budget
            )
            self.live_result = LiveCluster(
                configs, run_dir, crashes=crashes
            ).run(timeout=timeout)
            # Default trace exports live inside run_dir: join them into
            # the cross-process lifecycle view before the cleanup below.
            live_lifecycle = self._join_live_lifecycle(
                self.live_result.trace_paths
            )
        finally:
            # Sockets, configs, status files (and, when no trace_dir
            # was given, the default trace output) are scratch; an
            # explicit trace_dir lives outside run_dir and survives.
            shutil.rmtree(run_dir, ignore_errors=True)
        live = self.live_result
        delivered_map = live.delivered_min()
        delivered = sum(
            min(delivered_map.get(label, 0), minimum)
            for label, minimum in expected
        )
        statuses = live.statuses.values()
        wire = WireSnapshot(
            messages=sum(s.wire_messages for s in statuses),
            bytes=sum(s.wire_bytes for s in statuses),
            delivered=sum(s.wire_messages for s in statuses),
        )
        slo = None
        if scenario.slo is not None:
            slo = scenario.slo.evaluate(live_lifecycle, live.metrics)
        self.rounds_run = rounds
        self.result = ScenarioResult(
            scenario=scenario.name,
            protocol=scenario.protocol,
            seed=scenario.seed,
            rounds_run=rounds,
            stopped_by="live-complete" if live.converged else "live-timeout",
            converged=live.converged,
            requests_issued=issued,
            requests_delivered=delivered,
            wire=wire,
            total_blocks=max((s.blocks for s in statuses), default=0),
            crashes=live.crashes,
            restarts=sum(s.recovered for s in statuses),
            metrics=live.metrics,
            live_lifecycle=live_lifecycle,
            slo=slo,
            wall_seconds=round(live.wall_seconds, 6),
        )
        return self.result

    @staticmethod
    def _join_live_lifecycle(
        trace_paths: dict[str, str]
    ) -> LifecycleStats | None:
        """Join every node's trace export into one wall-clock lifecycle.

        Live recorders stamp events with ``loop.time()`` —
        CLOCK_MONOTONIC, comparable across processes on one machine —
        so feeding all exports through a single
        :class:`~repro.obs.lifecycle.LifecycleIndex` matches each
        block's seal on its builder against first-receive / validate /
        interpret on every other node, by ref.
        """
        index = LifecycleIndex()
        observed = 0
        for server, path in sorted(trace_paths.items()):
            try:
                events = read_jsonl(path)
            except OSError:
                continue
            for event in events:
                index.observe(ServerId(server), event)
            observed += len(events)
        return index.stats() if observed else None

    # -- result assembly -------------------------------------------------------

    def _forks_observed(self) -> int:
        shim = next(iter(self.cluster.shims.values()), None)
        return 0 if shim is None else len(shim.dag.forks())

    def _collect(self, stopped_by: str, wall_seconds: float) -> ScenarioResult:
        cluster = self.cluster
        driver = self.driver
        virtual_time = cluster.sim.now
        delivered = driver.delivered_count
        wire = cluster.wire_snapshot()
        interpreter = cluster.interpreter_snapshot()
        storage = cluster.storage_snapshot()
        return ScenarioResult(
            scenario=self.scenario.name,
            protocol=self.scenario.protocol,
            seed=self.scenario.seed,
            rounds_run=self.rounds_run,
            virtual_time=virtual_time,
            stopped_by=stopped_by,
            # The strict quantifier: a server left down means the
            # configured correct set has NOT converged (down_at_end
            # names the culprits; live-only convergence is derivable).
            converged=cluster.dags_converged(),
            requests_issued=driver.issued,
            requests_delivered=delivered,
            throughput=(
                round(delivered / virtual_time, 6) if virtual_time else 0.0
            ),
            latency_rounds=LatencyStats.from_samples(driver.latencies_rounds()),
            latency_time=LatencyStats.from_samples(driver.latencies_time()),
            wire=wire,
            interpreter=interpreter,
            storage=storage,
            total_blocks=cluster.total_blocks(),
            forks_observed=self._forks_observed(),
            crashes=cluster.crashes_performed,
            restarts=cluster.restarts_performed,
            down_at_end=tuple(sorted(cluster.down)),
            probes={
                name: tuple(series)
                for name, series in self._probe_series.items()
            },
            lifecycle=(
                cluster.tracer.lifecycle.stats()
                if cluster.tracer is not None
                else None
            ),
            metrics=_sim_metrics(wire, interpreter, storage),
            wall_seconds=round(wall_seconds, 6),
        )


def run_scenario(
    scenario: Scenario,
    storage_root: str | Path | None = None,
    trace_dir: str | Path | None = None,
    live: bool = False,
) -> ScenarioResult:
    """Build a runner, run it, return the result (the one-liner API)."""
    return ScenarioRunner(
        scenario, storage_root=storage_root, trace_dir=trace_dir, live=live
    ).run()
