"""Declarative workloads — request generators with latency tracking.

A workload is pure data: it says *when* requests enter the system, at
*which* servers, and under which labels.  The actual request objects
come from the protocol registry (each protocol names a deterministic
``make_request(index)`` factory), so the same workload description
replays against any embedded protocol and round-trips through JSON.

Two generator families cover the loops previously hand-written across
benchmarks and examples:

* :class:`OpenLoopWorkload` — a fixed injection *rate*: ``rate``
  requests every ``period`` rounds for ``rounds`` injection rounds,
  regardless of how the system keeps up (saturation studies).
* :class:`ClosedLoopWorkload` — a fixed number of in-flight *clients*:
  each client issues its next request only once the previous one is
  delivered everywhere (latency studies).

The :class:`WorkloadDriver` is the imperative half: it injects requests
into a live cluster, stamps issue times, detects deliveries and keeps
the per-request latency records the result layer summarizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ScenarioError
from repro.scenario._kinds import decode_kind
from repro.types import Label, Request, ServerId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.cluster import Cluster

#: Deterministic request factory provided by the protocol registry.
RequestFactory = Callable[[int], Request]

_WORKLOAD_KINDS: dict[str, type["Workload"]] = {}


@dataclass(frozen=True)
class Workload:
    """Common declarative surface of all workload generators.

    ``sender`` selects the server a request enters at: ``round-robin``
    (default) cycles through live correct servers, ``random`` draws
    from the workload RNG, and ``fixed:<server>`` pins one server.
    ``shared_label`` collapses all requests onto one protocol instance
    (e.g. a replicated counter ledger); delivery of request ``i`` is
    then "every correct server raised at least ``i+1`` indications".
    Without it, request ``i`` gets its own instance
    ``<label_prefix><i>``.
    """

    kind = "workload"

    sender: str = "round-robin"
    label_prefix: str = "tx-"
    shared_label: str | None = None

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        # Abstract intermediaries (no own `kind`) are not decodable.
        if "kind" in cls.__dict__:
            _WORKLOAD_KINDS[cls.kind] = cls

    # -- declarative schedule -------------------------------------------------

    def planned_total(self) -> int:
        """Total requests this workload will ever issue."""
        raise NotImplementedError

    def due_at(self, round_index: int, issued: int, in_flight: int) -> int:
        """How many new requests to issue before ``round_index`` given
        ``issued`` so far and ``in_flight`` not yet delivered."""
        raise NotImplementedError

    # -- JSON -----------------------------------------------------------------

    def to_json_dict(self) -> dict[str, object]:
        data: dict[str, object] = {"kind": self.kind}
        data.update(
            {
                "sender": self.sender,
                "label_prefix": self.label_prefix,
                "shared_label": self.shared_label,
            }
        )
        data.update(self._payload())
        return data

    def _payload(self) -> dict[str, object]:
        return {}

    @classmethod
    def _from_payload(cls, data: dict[str, object]) -> "Workload":
        return cls(**data)  # type: ignore[arg-type]

    @staticmethod
    def from_json_dict(data: dict[str, object]) -> "Workload":
        return decode_kind(_WORKLOAD_KINDS, Workload, data, "workload")


@dataclass(frozen=True)
class OpenLoopWorkload(Workload):
    """``rate`` requests injected every ``period`` rounds, starting at
    ``start_round``, for ``rounds`` injection rounds total."""

    kind = "open-loop"

    rate: int = 1
    rounds: int = 1
    period: int = 1
    start_round: int = 0

    def __post_init__(self) -> None:
        if self.rate < 1 or self.rounds < 0 or self.period < 1:
            raise ScenarioError(
                f"open-loop workload needs rate ≥ 1, rounds ≥ 0, period ≥ 1; "
                f"got rate={self.rate} rounds={self.rounds} period={self.period}"
            )

    def planned_total(self) -> int:
        return self.rate * self.rounds

    def due_at(self, round_index: int, issued: int, in_flight: int) -> int:
        offset = round_index - self.start_round
        if offset < 0 or offset % self.period:
            return 0
        if offset // self.period >= self.rounds:
            return 0
        return min(self.rate, self.planned_total() - issued)

    def _payload(self) -> dict[str, object]:
        return {
            "rate": self.rate,
            "rounds": self.rounds,
            "period": self.period,
            "start_round": self.start_round,
        }


@dataclass(frozen=True)
class ClosedLoopWorkload(Workload):
    """``clients`` requests kept in flight until ``total`` issued."""

    kind = "closed-loop"

    clients: int = 1
    total: int = 1

    def __post_init__(self) -> None:
        if self.clients < 1 or self.total < 1:
            raise ScenarioError(
                f"closed-loop workload needs clients ≥ 1 and total ≥ 1; "
                f"got clients={self.clients} total={self.total}"
            )

    def planned_total(self) -> int:
        return self.total

    def due_at(self, round_index: int, issued: int, in_flight: int) -> int:
        budget = self.total - issued
        slots = self.clients - in_flight
        return max(0, min(budget, slots))

    def _payload(self) -> dict[str, object]:
        return {"clients": self.clients, "total": self.total}


@dataclass
class RequestRecord:
    """Lifecycle of one workload request."""

    index: int
    label: Label
    server: ServerId
    issue_round: int
    issue_time: float
    delivered_round: int | None = None
    delivered_time: float | None = None

    @property
    def delivered(self) -> bool:
        return self.delivered_round is not None

    def latency_rounds(self) -> int | None:
        if self.delivered_round is None:
            return None
        return self.delivered_round - self.issue_round + 1

    def latency_time(self) -> float | None:
        if self.delivered_time is None:
            return None
        return self.delivered_time - self.issue_time


class WorkloadDriver:
    """Runs one declarative workload against a live cluster."""

    def __init__(
        self,
        workload: Workload,
        make_request: RequestFactory,
        rng: random.Random,
    ) -> None:
        self.workload = workload
        self.make_request = make_request
        self.rng = rng
        self.records: list[RequestRecord] = []
        self._pending: list[RequestRecord] = []
        self._rr_cursor = 0
        #: Requests that came due while no sender was eligible (every
        #: correct server down or dying); issued at the next chance.
        self._deferred = 0

    # -- bookkeeping ----------------------------------------------------------

    @property
    def issued(self) -> int:
        return len(self.records)

    @property
    def delivered_count(self) -> int:
        return len(self.records) - len(self._pending)

    def exhausted(self) -> bool:
        """All planned requests have been issued (none still deferred)."""
        return (
            self._deferred == 0
            and self.issued >= self.workload.planned_total()
        )

    def all_delivered_now(self) -> bool:
        return not self._pending

    # -- sender selection -----------------------------------------------------

    def _eligible_senders(self, cluster: "Cluster", round_index: int) -> list[ServerId]:
        """Live correct servers not about to crash this very round — a
        request buffered into a server that dies before sealing it into
        a block is simply lost, which would deadlock AllDelivered."""
        dying = {e.server for e in cluster.crash_plan.crashes_at(round_index)}
        return [s for s in cluster.correct_servers if s not in dying]

    def _pick_sender(
        self, eligible: list[ServerId], policy: str
    ) -> ServerId:
        if policy == "round-robin":
            server = eligible[self._rr_cursor % len(eligible)]
            self._rr_cursor += 1
            return server
        if policy == "random":
            return eligible[self.rng.randrange(len(eligible))]
        if policy.startswith("fixed:"):
            # before_round narrowed ``eligible`` to the pinned server
            # (and deferred the batch when it is down).
            return eligible[0]
        raise ScenarioError(
            f"unknown sender policy {policy!r} "
            f"(expected 'round-robin', 'random', or 'fixed:<server>')"
        )

    # -- driving --------------------------------------------------------------

    def before_round(self, cluster: "Cluster", round_index: int) -> None:
        """Inject the requests due at the start of ``round_index`` plus
        any carried over from rounds with no eligible sender."""
        # Count deferred requests as already issued for scheduling, so
        # the carry-over does not double against planned_total.
        due = self._deferred + self.workload.due_at(
            round_index, self.issued + self._deferred, len(self._pending)
        )
        if due <= 0:
            return
        eligible = self._eligible_senders(cluster, round_index)
        policy = self.workload.sender
        if policy.startswith("fixed:"):
            # A pinned sender that is currently down/dying defers the
            # whole batch (same carry-over as a total outage) instead
            # of aborting the run mid-flight.
            pinned = ServerId(policy.split(":", 1)[1])
            eligible = [s for s in eligible if s == pinned]
        if not eligible:  # sender(s) down/dying: carry over
            self._deferred = due
            return
        self._deferred = 0
        for _ in range(due):
            index = self.issued
            if self.workload.shared_label is not None:
                label = Label(self.workload.shared_label)
            else:
                label = Label(f"{self.workload.label_prefix}{index}")
            server = self._pick_sender(eligible, self.workload.sender)
            record = RequestRecord(
                index=index,
                label=label,
                server=server,
                issue_round=round_index,
                issue_time=cluster.sim.now,
            )
            cluster.request(server, label, self.make_request(index))
            self.records.append(record)
            self._pending.append(record)

    def after_round(self, cluster: "Cluster", round_index: int) -> None:
        """Mark freshly delivered requests after ``round_index`` ran."""
        still_pending: list[RequestRecord] = []
        for record in self._pending:
            if self._record_delivered(cluster, record):
                record.delivered_round = round_index
                record.delivered_time = cluster.sim.now
            else:
                still_pending.append(record)
        self._pending = still_pending

    def final_sweep(self, cluster: "Cluster", round_index: int) -> None:
        """One last delivery check (off-line interpretation happens
        after the driving loop; late deliveries land here)."""
        self.after_round(cluster, round_index)

    def _record_delivered(self, cluster: "Cluster", record: RequestRecord) -> bool:
        if self.workload.shared_label is not None:
            # Request i on the shared instance is delivered once every
            # correct server has raised > i indications for it.
            return cluster.all_delivered(record.label, minimum=record.index + 1)
        return cluster.all_delivered(record.label)

    # -- summaries ------------------------------------------------------------

    def latencies_rounds(self) -> list[int]:
        return sorted(
            r.latency_rounds() for r in self.records if r.delivered  # type: ignore[misc]
        )

    def latencies_time(self) -> list[float]:
        return sorted(
            r.latency_time() for r in self.records if r.delivered  # type: ignore[misc]
        )
