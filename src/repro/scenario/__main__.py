"""``python -m repro.scenario`` — list, inspect, run and diff scenarios.

Subcommands
-----------

* ``list`` — the registry catalogue with one-line descriptions.
* ``show NAME`` — the exact scenario JSON that ``run NAME`` executes.
* ``run NAME [NAME...]`` — execute scenarios; ``--json`` emits
  ``{"results": [...]}`` (the document CI's schema check parses),
  otherwise a human summary table per scenario.
* ``diff NAME_A NAME_B`` — run two scenarios (or the same one under
  two seeds via ``--seed``/``--seed-b``) and print every result field
  that differs.
* ``trace diff FILE_A FILE_B`` — compare two exported flight-recorder
  traces (``run --trace-dir`` writes them) and report the first
  divergence; exit 0 when identical, 1 when they diverge.
* ``metrics report|top|diff`` — inspect metrics from a ``run --json``
  result document, a ``{"results": [...]}`` batch, or a raw per-node
  ``*.metrics.jsonl`` snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Mapping

from repro.errors import ScenarioError
from repro.obs.diverge import (
    first_chain_divergence,
    first_divergence,
    first_event_divergence,
)
from repro.obs.export import read_jsonl
from repro.obs.metrics import MetricsError, MetricsReport, MetricsSnapshot
from repro.scenario import registry
from repro.scenario.result import ScenarioResult
from repro.scenario.runner import run_scenario


def _flatten(data: Mapping[str, object], prefix: str = "") -> dict[str, object]:
    flat: dict[str, object] = {}
    for key, value in data.items():
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(_flatten(value, f"{path}."))
        else:
            flat[path] = value
    return flat


def _summary_lines(result: ScenarioResult) -> list[str]:
    latency = result.latency_rounds
    lines = [
        f"scenario      : {result.scenario} (protocol={result.protocol}, "
        f"seed={result.seed})",
        f"stopped       : {result.stopped_by} after {result.rounds_run} rounds "
        f"(t_virt={result.virtual_time:.1f})",
        f"requests      : {result.requests_delivered}/{result.requests_issued} "
        f"delivered, throughput={result.throughput:.4f}/t",
        f"latency (rnd) : p50={latency.p50} p90={latency.p90} "
        f"p99={latency.p99} max={latency.max}",
        f"wire          : {result.wire.messages} envelopes, "
        f"{result.wire.bytes} bytes, {result.wire.dropped} dropped",
        f"cluster       : {result.total_blocks} blocks, converged="
        f"{result.converged}, forks={result.forks_observed}, "
        f"crashes={result.crashes}, restarts={result.restarts}",
    ]
    if result.storage.any_activity():
        lines.append(
            f"storage       : {result.storage.wal_bytes} WAL bytes in "
            f"{result.storage.wal_segments} segments, "
            f"{result.storage.checkpoints_written} checkpoints, "
            f"{result.storage.payloads_dropped} payloads pruned"
        )
    if result.down_at_end:
        lines.append(f"down at end   : {', '.join(result.down_at_end)}")
    if result.lifecycle is not None:
        commit = result.lifecycle.seal_to_interpret
        if commit.count:
            lines.append(
                f"lifecycle     : seal→interpret p50={commit.p50} "
                f"p90={commit.p90} p99={commit.p99} max={commit.max} "
                f"(t_virt, {commit.count} samples)"
            )
    if result.live_lifecycle is not None:
        commit = result.live_lifecycle.seal_to_interpret
        if commit.count:
            lines.append(
                f"live lifecycle: seal→interpret "
                f"p50={commit.p50 * 1000:.1f}ms "
                f"p99={commit.p99 * 1000:.1f}ms "
                f"max={commit.max * 1000:.1f}ms "
                f"(wall clock, {commit.count} samples)"
            )
    if result.metrics is not None and result.metrics.by_server:
        servers = ", ".join(server for server, _ in result.metrics.by_server)
        lines.append(
            f"metrics       : {len(result.metrics.merged.points)} merged "
            f"points from [{servers}] "
            f"(see `python -m repro.scenario metrics report`)"
        )
    if result.slo is not None:
        state = "passed" if result.slo.passed else "FAILED"
        lines.append(f"slo           : {state}")
        lines.append(result.slo.render())
    lines.append(f"wall clock    : {result.wall_seconds:.3f}s")
    return lines


def cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in registry.names():
        scenario = registry.get(name, smoke=args.smoke)
        rows.append((name, scenario.protocol, scenario.description))
    width = max(len(name) for name, _, _ in rows)
    for name, protocol, description in rows:
        print(f"{name.ljust(width)}  [{protocol}]  {description}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    scenario = registry.get(args.name, smoke=args.smoke, seed=args.seed)
    print(scenario.to_json(indent=2))
    return 0


def _fresh_storage_root(base: str | None, name: str) -> str | None:
    """A per-run subdirectory under ``--storage-dir`` (every run gets
    fresh durable state; artefacts stay inspectable under ``base``)."""
    if base is None:
        return None
    root = Path(base)
    root.mkdir(parents=True, exist_ok=True)
    return tempfile.mkdtemp(dir=root, prefix=f"{name}-")


def cmd_run(args: argparse.Namespace) -> int:
    results = []
    for name in args.names:
        scenario = registry.get(name, smoke=args.smoke, seed=args.seed)
        trace_dir = (
            Path(args.trace_dir) / name if args.trace_dir is not None else None
        )
        result = run_scenario(
            scenario,
            storage_root=_fresh_storage_root(args.storage_dir, name),
            trace_dir=trace_dir,
            live=args.live,
        )
        results.append(result)
        if not args.json:
            print("\n".join(_summary_lines(result)))
            print()
    if args.json:
        print(
            json.dumps(
                {"results": [r.to_json_dict() for r in results]},
                indent=2,
                sort_keys=True,
            )
        )
    failed = [
        r for r in results if r.stopped_by in ("max-rounds", "live-timeout")
    ]
    slo_failed = [r for r in results if r.slo is not None and not r.slo.passed]
    return 1 if failed or slo_failed else 0


def cmd_diff(args: argparse.Namespace) -> int:
    scenario_a = registry.get(args.name_a, smoke=args.smoke, seed=args.seed)
    seed_b = args.seed_b if args.seed_b is not None else args.seed
    scenario_b = registry.get(args.name_b, smoke=args.smoke, seed=seed_b)
    result_a = run_scenario(
        scenario_a, storage_root=_fresh_storage_root(args.storage_dir, args.name_a)
    )
    result_b = run_scenario(
        scenario_b, storage_root=_fresh_storage_root(args.storage_dir, args.name_b)
    )
    flat_a = _flatten(result_a.to_json_dict(include_wall_clock=False))
    flat_b = _flatten(result_b.to_json_dict(include_wall_clock=False))
    label_a = f"{args.name_a}@{scenario_a.seed}"
    label_b = f"{args.name_b}@{scenario_b.seed}"
    differing = [
        key
        for key in sorted(set(flat_a) | set(flat_b))
        if flat_a.get(key) != flat_b.get(key)
    ]
    if not differing:
        print(f"{label_a} and {label_b}: results identical")
        return 0
    width = max(len(key) for key in differing)
    print(f"{'field'.ljust(width)}  {label_a}  ->  {label_b}")
    for key in differing:
        print(
            f"{key.ljust(width)}  {flat_a.get(key, '<absent>')}  ->  "
            f"{flat_b.get(key, '<absent>')}"
        )
    return 0


def _load_metrics(path: str) -> MetricsReport:
    """A :class:`MetricsReport` from any of the three on-disk shapes:
    a ``run --json`` result document, a ``{"results": [...]}`` batch
    (first result carrying metrics wins), or a node's raw canonical
    ``*.metrics.jsonl`` snapshot."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict):
            candidates = doc.get("results", [doc])
            if isinstance(candidates, list):
                for entry in candidates:
                    if isinstance(entry, dict) and entry.get("metrics"):
                        return MetricsReport.from_dict(entry["metrics"])
            if "merged" in doc or "by_server" in doc:
                return MetricsReport.from_dict(doc)
            raise ScenarioError(
                f"{path}: no 'metrics' found in the result document"
            )
    try:
        snapshot = MetricsSnapshot.from_jsonl(text)
    except MetricsError as exc:
        raise ScenarioError(f"{path}: not a metrics document: {exc}") from exc
    server = snapshot.server or "node"
    return MetricsReport.from_snapshots({server: snapshot})


def cmd_metrics_report(args: argparse.Namespace) -> int:
    report = _load_metrics(args.file)
    if args.server is not None:
        snapshot = report.snapshot(args.server)
        if snapshot is None:
            known = [server for server, _ in report.by_server]
            raise ScenarioError(
                f"no snapshot for server {args.server!r} (known: {known})"
            )
        report = MetricsReport.from_snapshots({args.server: snapshot})
    print(report.render())
    return 0


def cmd_metrics_top(args: argparse.Namespace) -> int:
    report = _load_metrics(args.file)
    print(report.render(limit=args.n))
    return 0


def cmd_metrics_diff(args: argparse.Namespace) -> int:
    report_a = _load_metrics(args.file_a)
    report_b = _load_metrics(args.file_b)

    def flat(report: MetricsReport) -> dict[str, object]:
        out: dict[str, object] = {}
        for p in report.merged.points:
            labels = ",".join(f"{k}={v}" for k, v in p.labels)
            name = f"{p.name}{{{labels}}}" if labels else p.name
            out[name] = p.count if p.kind == "histogram" else p.value
        return out

    flat_a, flat_b = flat(report_a), flat(report_b)
    differing = [
        key
        for key in sorted(set(flat_a) | set(flat_b))
        if flat_a.get(key) != flat_b.get(key)
    ]
    if not differing:
        print("metrics identical")
        return 0
    width = max(len(key) for key in differing)
    print(f"{'metric'.ljust(width)}  {args.file_a}  ->  {args.file_b}")
    for key in differing:
        print(
            f"{key.ljust(width)}  {flat_a.get(key, '<absent>')}  ->  "
            f"{flat_b.get(key, '<absent>')}"
        )
    return 1


def cmd_trace_diff(args: argparse.Namespace) -> int:
    left = read_jsonl(Path(args.file_a))
    right = read_jsonl(Path(args.file_b))
    if args.mode == "events":
        divergence = first_event_divergence(left, right)
    elif args.mode == "chains":
        divergence = first_chain_divergence(left, right)
    else:
        divergence = first_divergence(left, right)
    label_a = Path(args.file_a).name
    label_b = Path(args.file_b).name
    if divergence is None:
        print(f"{label_a} and {label_b}: traces agree ({args.mode} mode)")
        return 0
    print(f"{label_a} vs {label_b}:")
    print(divergence.describe())
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description="List, inspect, run and diff declarative scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="catalogue of named scenarios")
    p_list.add_argument("--smoke", action="store_true")
    p_list.set_defaults(func=cmd_list)

    p_show = sub.add_parser("show", help="print a scenario's JSON document")
    p_show.add_argument("name")
    p_show.add_argument("--smoke", action="store_true")
    p_show.add_argument("--seed", type=int, default=None)
    p_show.set_defaults(func=cmd_show)

    p_run = sub.add_parser("run", help="execute one or more scenarios")
    p_run.add_argument("names", nargs="+")
    p_run.add_argument("--json", action="store_true", help="emit JSON results")
    p_run.add_argument(
        "--smoke", action="store_true", help="smaller, CI-sized variants"
    )
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument(
        "--storage-dir",
        default=None,
        help="base directory for durable state; each run gets a fresh "
        "subdirectory under it and the artefacts are kept (default: a "
        "temp dir, removed after the run)",
    )
    p_run.add_argument(
        "--trace-dir",
        default=None,
        help="export per-server flight-recorder traces to "
        "<trace-dir>/<scenario>/<server>.jsonl (forces tracing on)",
    )
    p_run.add_argument(
        "--live",
        action="store_true",
        help="execute on a live multi-process cluster (one OS process "
        "per server over unix-domain sockets) instead of the simulator; "
        "fault-free and crash-fault scenarios only",
    )
    p_run.set_defaults(func=cmd_run)

    p_diff = sub.add_parser(
        "diff", help="run two scenarios (or seeds) and diff the results"
    )
    p_diff.add_argument("name_a")
    p_diff.add_argument("name_b")
    p_diff.add_argument("--smoke", action="store_true")
    p_diff.add_argument("--seed", type=int, default=None)
    p_diff.add_argument(
        "--seed-b", type=int, default=None, help="seed for the second run"
    )
    p_diff.add_argument("--storage-dir", default=None)
    p_diff.set_defaults(func=cmd_diff)

    p_trace = sub.add_parser(
        "trace", help="operations on exported flight-recorder traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_diff = trace_sub.add_parser(
        "diff",
        help="find the first divergence between two trace JSONL files "
        "(exit 0 identical, 1 diverged)",
    )
    p_trace_diff.add_argument("file_a")
    p_trace_diff.add_argument("file_b")
    p_trace_diff.add_argument(
        "--mode",
        choices=("auto", "events", "chains"),
        default="auto",
        help="'events' compares positional event identity (same-server "
        "replays), 'chains' compares per-builder validated chains "
        "(cross-server equivocation hunting), 'auto' tries chains "
        "first and falls back to events",
    )
    p_trace_diff.set_defaults(func=cmd_trace_diff)

    p_metrics = sub.add_parser(
        "metrics", help="inspect metrics from results or node snapshots"
    )
    metrics_sub = p_metrics.add_subparsers(dest="metrics_command", required=True)
    p_metrics_report = metrics_sub.add_parser(
        "report",
        help="render the merged cluster metrics table from a result "
        "JSON, a {\"results\": [...]} batch, or a *.metrics.jsonl file",
    )
    p_metrics_report.add_argument("file")
    p_metrics_report.add_argument(
        "--server", default=None, help="show one server's snapshot only"
    )
    p_metrics_report.set_defaults(func=cmd_metrics_report)
    p_metrics_top = metrics_sub.add_parser(
        "top", help="the n largest merged metrics"
    )
    p_metrics_top.add_argument("file")
    p_metrics_top.add_argument("-n", type=int, default=10)
    p_metrics_top.set_defaults(func=cmd_metrics_top)
    p_metrics_diff = metrics_sub.add_parser(
        "diff",
        help="diff two metrics documents point by point "
        "(exit 0 identical, 1 differing)",
    )
    p_metrics_diff.add_argument("file_a")
    p_metrics_diff.add_argument("file_b")
    p_metrics_diff.set_defaults(func=cmd_metrics_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ScenarioError, OSError) as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
