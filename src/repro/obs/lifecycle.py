"""Block-lifecycle latency: seal → first receive → validate → interpret.

The :class:`LifecycleIndex` listens to every recorder's emission hook
(:attr:`TraceRecorder.on_event`) and joins events into per-(block,
server) stage timestamps.  All times are **virtual** (simulator
clock), so the derived percentiles are seed-deterministic and safe to
embed in ``ScenarioResult`` JSON next to the other counters.

``seal → interpret`` is the commit latency the Lachesis-style DAG
metrics track: how long after a block is sealed does a given server
finish interpreting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import TraceEvent
    from repro.types import ServerId

# Imported lazily-by-name to keep this module import-light; the kind
# strings are part of the trace vocabulary in repro.obs.trace.
_SEALED = "block-sealed"
_VALIDATED = "block-validated"
_RECV = "wire-recv"
_INTERPRETED = "interpreted"


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


@dataclass(frozen=True)
class StageSummary:
    """Percentile summary of one lifecycle stage's latency samples."""

    count: int = 0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "StageSummary":
        if not samples:
            return cls()
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            p50=_percentile(ordered, 0.50),
            p90=_percentile(ordered, 0.90),
            p99=_percentile(ordered, 0.99),
            max=ordered[-1],
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "StageSummary":
        return cls(
            count=int(payload.get("count", 0)),  # type: ignore[arg-type]
            p50=float(payload.get("p50", 0.0)),  # type: ignore[arg-type]
            p90=float(payload.get("p90", 0.0)),  # type: ignore[arg-type]
            p99=float(payload.get("p99", 0.0)),  # type: ignore[arg-type]
            max=float(payload.get("max", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class LifecycleStats:
    """The four stage summaries a run surfaces.

    ``seal_to_interpret`` is end-to-end commit latency; the other three
    decompose it (transport / admission / interpretation scheduling).
    """

    seal_to_first_receive: StageSummary
    receive_to_validate: StageSummary
    validate_to_interpret: StageSummary
    seal_to_interpret: StageSummary

    def as_dict(self) -> dict[str, object]:
        return {
            "seal_to_first_receive": self.seal_to_first_receive.as_dict(),
            "receive_to_validate": self.receive_to_validate.as_dict(),
            "validate_to_interpret": self.validate_to_interpret.as_dict(),
            "seal_to_interpret": self.seal_to_interpret.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LifecycleStats":
        def stage(key: str) -> StageSummary:
            return StageSummary.from_dict(payload.get(key, {}))  # type: ignore[arg-type]

        return cls(
            seal_to_first_receive=stage("seal_to_first_receive"),
            receive_to_validate=stage("receive_to_validate"),
            validate_to_interpret=stage("validate_to_interpret"),
            seal_to_interpret=stage("seal_to_interpret"),
        )


class LifecycleIndex:
    """Joins trace events into per-(block, server) stage timestamps.

    Fed live via recorder ``on_event`` hooks, so joins are immune to
    ring-buffer eviction.  ``setdefault`` keeps *first* occurrences:
    the first wire receipt, the first validation, the first
    interpretation of a block at a server.
    """

    def __init__(self) -> None:
        #: block ref -> virtual seal time (recorded at the builder).
        self.sealed: dict[str, float] = {}
        #: (server, block ref) -> virtual time of first wire receipt.
        self.received: dict[tuple[str, str], float] = {}
        #: (server, block ref) -> virtual time of DAG admission.
        self.validated: dict[tuple[str, str], float] = {}
        #: (server, block ref) -> virtual time of interpretation.
        self.interpreted: dict[tuple[str, str], float] = {}

    def observe(self, server: "ServerId", event: "TraceEvent") -> None:
        kind = event.kind
        block = event.block
        if block is None:
            return
        if kind == _VALIDATED:
            self.validated.setdefault((str(server), block), event.t)
        elif kind == _RECV:
            self.received.setdefault((str(server), block), event.t)
        elif kind == _INTERPRETED:
            self.interpreted.setdefault((str(server), block), event.t)
        elif kind == _SEALED:
            self.sealed.setdefault(block, event.t)

    # -- derived samples -----------------------------------------------------------

    def seal_to_first_receive_samples(self) -> list[float]:
        return [
            t - self.sealed[ref]
            for (server, ref), t in sorted(self.received.items())
            if ref in self.sealed
        ]

    def receive_to_validate_samples(self) -> list[float]:
        return [
            t - self.received[key]
            for key, t in sorted(self.validated.items())
            if key in self.received
        ]

    def validate_to_interpret_samples(self) -> list[float]:
        return [
            t - self.validated[key]
            for key, t in sorted(self.interpreted.items())
            if key in self.validated
        ]

    def commit_latencies(self) -> list[float]:
        """seal → interpret per (block, server) — commit latency."""
        return [
            t - self.sealed[ref]
            for (server, ref), t in sorted(self.interpreted.items())
            if ref in self.sealed
        ]

    def commit_latency(self, fraction: float) -> float:
        """One percentile of commit latency (0.0 when no samples)."""
        return _percentile(sorted(self.commit_latencies()), fraction)

    def stats(self) -> LifecycleStats:
        return LifecycleStats(
            seal_to_first_receive=StageSummary.from_samples(
                self.seal_to_first_receive_samples()
            ),
            receive_to_validate=StageSummary.from_samples(
                self.receive_to_validate_samples()
            ),
            validate_to_interpret=StageSummary.from_samples(
                self.validate_to_interpret_samples()
            ),
            seal_to_interpret=StageSummary.from_samples(self.commit_latencies()),
        )
