"""First-divergence finder over two traces.

Two alignment modes:

- **event mode** — positional comparison of full event identities.
  The right tool for *the same server across two runs*: determinism
  says the streams must be identical, so the first mismatch is the
  exact point where a seed leak / unordered iteration crept in.

- **chain mode** — projects each trace onto per-builder validation
  streams ``builder → [(k, ref), …]`` (from ``block-validated``
  events) and compares those.  The right tool for *two different
  servers of one run*: their full streams legitimately differ (wire
  timing, peers), but per-chain admission is parent-first, so honest
  chains validate in identical ``(k, ref)`` order at every correct
  server — the first position where the refs differ is a fork, and
  under an equivocator it *names the equivocating block*.

:func:`first_divergence` picks chain mode first and falls back to
event mode, which is the right default for "why do these two traces
disagree".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.obs.trace import BLOCK_VALIDATED, TraceEvent


@dataclass(frozen=True)
class Divergence:
    """The earliest point where two traces disagree.

    ``mode`` is ``event-mismatch``/``event-length`` (event alignment)
    or ``chain-fork``/``chain-order``/``chain-length`` (chain
    alignment).  ``left``/``right`` describe what each side holds at
    the diverging position (``None`` when a side has run out).
    """

    mode: str
    index: int
    left: Mapping[str, object] | None
    right: Mapping[str, object] | None
    builder: str | None = None
    k: int | None = None

    def describe(self) -> str:
        if self.mode == "chain-fork":
            assert self.left is not None and self.right is not None
            return (
                f"first divergence: builder {self.builder} chain position "
                f"{self.index} (k={self.k}) — left validated block "
                f"{self.left['ref']}, right validated block {self.right['ref']} "
                f"(equivocation fork: same k, different blocks)"
            )
        if self.mode == "chain-order":
            assert self.left is not None and self.right is not None
            return (
                f"first divergence: builder {self.builder} chain position "
                f"{self.index} — left validated k={self.left['k']} "
                f"({self.left['ref']}), right validated k={self.right['k']} "
                f"({self.right['ref']})"
            )
        if self.mode == "chain-length":
            present = self.left if self.left is not None else self.right
            side = "left" if self.left is not None else "right"
            assert present is not None
            return (
                f"first divergence: builder {self.builder} chain position "
                f"{self.index} — only {side} validated k={present['k']} "
                f"({present['ref']})"
            )
        if self.mode == "event-length":
            present = self.left if self.left is not None else self.right
            side = "left" if self.left is not None else "right"
            assert present is not None
            return (
                f"first divergence: event {self.index} — only {side} has "
                f"{present['kind']} at t={present['t']}"
            )
        assert self.left is not None and self.right is not None
        return (
            f"first divergence: event {self.index} — left "
            f"{self.left['kind']} (t={self.left['t']}, block={self.left['block']}) "
            f"vs right {self.right['kind']} "
            f"(t={self.right['t']}, block={self.right['block']})"
        )


# -- event mode ----------------------------------------------------------------


def first_event_divergence(
    left: Sequence[TraceEvent], right: Sequence[TraceEvent]
) -> Divergence | None:
    """Positional identity comparison; ``None`` when identical."""
    for index, (a, b) in enumerate(zip(left, right)):
        if a.identity() != b.identity():
            return Divergence("event-mismatch", index, a.to_dict(), b.to_dict())
    if len(left) != len(right):
        index = min(len(left), len(right))
        extra_left = left[index].to_dict() if index < len(left) else None
        extra_right = right[index].to_dict() if index < len(right) else None
        return Divergence("event-length", index, extra_left, extra_right)
    return None


# -- chain mode ----------------------------------------------------------------


def chain_streams(events: Sequence[TraceEvent]) -> dict[str, list[tuple[int, str]]]:
    """Per-builder ``(k, ref)`` validation streams, in admission order."""
    streams: dict[str, list[tuple[int, str]]] = {}
    for event in events:
        if event.kind != BLOCK_VALIDATED or event.block is None:
            continue
        builder = str(event.data.get("n", ""))
        k = int(event.data.get("k", 0))  # type: ignore[arg-type]
        streams.setdefault(builder, []).append((k, event.block))
    return streams


def first_chain_divergence(
    left: Sequence[TraceEvent], right: Sequence[TraceEvent]
) -> Divergence | None:
    """Earliest per-builder validation mismatch, lowest ``(k, builder)``
    first; ``None`` when every chain matches."""
    streams_left = chain_streams(left)
    streams_right = chain_streams(right)
    best: Divergence | None = None
    for builder in sorted(set(streams_left) | set(streams_right)):
        sa = streams_left.get(builder, [])
        sb = streams_right.get(builder, [])
        candidate: Divergence | None = None
        for index, (ea, eb) in enumerate(zip(sa, sb)):
            if ea != eb:
                mode = "chain-fork" if ea[0] == eb[0] else "chain-order"
                candidate = Divergence(
                    mode,
                    index,
                    {"k": ea[0], "ref": ea[1]},
                    {"k": eb[0], "ref": eb[1]},
                    builder=builder,
                    k=min(ea[0], eb[0]),
                )
                break
        if candidate is None and len(sa) != len(sb):
            index = min(len(sa), len(sb))
            longer = sa if len(sa) > len(sb) else sb
            entry = {"k": longer[index][0], "ref": longer[index][1]}
            candidate = Divergence(
                "chain-length",
                index,
                entry if len(sa) > len(sb) else None,
                entry if len(sb) > len(sa) else None,
                builder=builder,
                k=longer[index][0],
            )
        if candidate is not None and (
            best is None or (candidate.k, candidate.builder) < (best.k, best.builder)
        ):
            best = candidate
    return best


def first_divergence(
    left: Sequence[TraceEvent], right: Sequence[TraceEvent]
) -> Divergence | None:
    """Chain mode first (names forks), event mode as fallback."""
    chain = first_chain_divergence(left, right)
    if chain is not None:
        return chain
    return first_event_divergence(left, right)
