"""The flight recorder: per-server typed event traces.

Every layer of the stack emits :class:`TraceEvent` records into its
server's :class:`TraceRecorder` — block sealed, wire send/recv,
validated, condemned (with cause), buffered on a missing predecessor,
interpreted, indication, WAL append, checkpoint, GC release/destroy,
horizon advance, fault injected.  Events are stamped with **virtual
time** (the simulator clock) and a monotonic per-server sequence
number, never with wall-clock time, so the same scenario + seed
replays to a byte-identical trace.

Storage is a bounded ring buffer (:class:`collections.deque` with
``maxlen``) by default; the sequence counter keeps counting past
evictions so exported traces reveal how much history was dropped.

When tracing is off, instrumentation sites hold the shared
:data:`NULL_RECORDER` whose ``enabled`` flag is ``False`` — the hot
path pays one attribute check and nothing else.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.types import ServerId

#: Default ring-buffer capacity (events per server).
DEFAULT_CAPACITY = 65536

# -- event kinds (the trace vocabulary) ----------------------------------------

BLOCK_SEALED = "block-sealed"
BLOCK_VALIDATED = "block-validated"
CONDEMNED = "condemned"
BUFFERED_MISSING_PRED = "buffered-missing-pred"
WIRE_SEND = "wire-send"
WIRE_RECV = "wire-recv"
INTERPRETED = "interpreted"
INDICATION = "indication"
WAL_APPEND = "wal-append"
CHECKPOINT = "checkpoint"
GC_RELEASE = "gc-release"
GC_DESTROY = "gc-destroy"
HORIZON_ADVANCE = "horizon-advance"
FAULT_INJECTED = "fault-injected"

#: All known event kinds (export sanity checks, docs).
KINDS = frozenset(
    {
        BLOCK_SEALED,
        BLOCK_VALIDATED,
        CONDEMNED,
        BUFFERED_MISSING_PRED,
        WIRE_SEND,
        WIRE_RECV,
        INTERPRETED,
        INDICATION,
        WAL_APPEND,
        CHECKPOINT,
        GC_RELEASE,
        GC_DESTROY,
        HORIZON_ADVANCE,
        FAULT_INJECTED,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``seq`` is the per-server monotonic position (survives ring
    eviction), ``t`` the virtual time of emission, ``kind`` one of the
    vocabulary above, ``block``/``peer`` the optional block ref and
    remote server the event concerns, ``data`` kind-specific fields.
    """

    seq: int
    t: float
    kind: str
    block: str | None = None
    peer: str | None = None
    data: Mapping[str, object] = field(default_factory=dict)

    def identity(self) -> tuple:
        """What two traces must agree on for this event to 'match'.

        Everything except ``seq``: two servers (or two runs) emit
        independent sequence numbers, but the *content* of the streams
        is what determinism promises.
        """
        return (self.t, self.kind, self.block, self.peer, tuple(sorted(self.data.items())))

    def to_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "block": self.block,
            "peer": self.peer,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceEvent":
        return cls(
            seq=int(payload["seq"]),  # type: ignore[arg-type]
            t=float(payload["t"]),  # type: ignore[arg-type]
            kind=str(payload["kind"]),
            block=None if payload.get("block") is None else str(payload["block"]),
            peer=None if payload.get("peer") is None else str(payload["peer"]),
            data=dict(payload.get("data", {})),  # type: ignore[arg-type]
        )


class TraceRecorder:
    """A bounded, append-only event log for one server.

    ``clock`` is a zero-argument callable returning virtual time — the
    cluster wires it to ``sim.now`` so every timestamp is deterministic
    under a fixed seed.  ``on_event`` (if given) sees every event at
    emission time, *before* ring eviction can drop it — the lifecycle
    index hangs off this hook.
    """

    enabled = True

    def __init__(
        self,
        server: ServerId,
        clock: Callable[[], float] | None = None,
        capacity: int = DEFAULT_CAPACITY,
        on_event: Callable[[ServerId, TraceEvent], None] | None = None,
    ) -> None:
        self.server = server
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        #: Next sequence number; also the total emitted (incl. evicted).
        self.seq = 0
        self.on_event = on_event

    def emit(
        self,
        kind: str,
        block: object | None = None,
        peer: object | None = None,
        **data: object,
    ) -> TraceEvent:
        event = TraceEvent(
            seq=self.seq,
            t=self._clock(),
            kind=kind,
            block=None if block is None else str(block),
            peer=None if peer is None else str(peer),
            data=data,
        )
        self.seq += 1
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(self.server, event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.seq - len(self.events)

    def snapshot(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self.events)


class NullRecorder:
    """The tracing-off recorder: ``enabled`` is False, ``emit`` is inert.

    Instrumentation sites default to the shared :data:`NULL_RECORDER`
    and guard emission with ``if self.tracer.enabled:`` — one attribute
    check on the hot path, no allocation, no branch misprediction fuel.
    """

    enabled = False
    server = None
    seq = 0
    events: tuple = ()
    on_event = None

    def emit(self, kind: str, block: object = None, peer: object = None, **data: object) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> list:
        return []


#: The shared no-op recorder every instrumentation point defaults to.
NULL_RECORDER = NullRecorder()


class ClusterTracer:
    """One recorder per server + the cluster-wide lifecycle index.

    The lifecycle index listens to every recorder's ``on_event`` hook,
    so latency joins survive ring eviction.
    """

    def __init__(
        self,
        servers: Iterable[ServerId],
        clock: Callable[[], float],
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        from repro.obs.lifecycle import LifecycleIndex

        self.lifecycle = LifecycleIndex()
        self.recorders: dict[ServerId, TraceRecorder] = {
            server: TraceRecorder(
                server, clock=clock, capacity=capacity, on_event=self.lifecycle.observe
            )
            for server in servers
        }

    def recorder(self, server: ServerId) -> TraceRecorder:
        return self.recorders[server]

    def export(self, directory) -> dict[ServerId, object]:
        """Write one ``<server>.jsonl`` per recorder; returns the paths."""
        from repro.obs.export import export_tracer

        return export_tracer(self, directory)
