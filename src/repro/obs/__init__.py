"""Observability: deterministic flight recorder, lifecycle latencies,
hot-path timers, and trace diffing.

The paper's central property — interpretation is a pure function of
the block DAG (Lemma 4.2) — means every server's observable behaviour
is a *deterministic, comparable event stream*.  This package records
that stream:

- :mod:`repro.obs.trace` — per-server :class:`TraceRecorder` of typed
  events stamped with virtual time and a monotonic sequence number.
- :mod:`repro.obs.export` — JSONL export/load of recorded traces.
- :mod:`repro.obs.lifecycle` — joins events into per-(block, server)
  seal→receive→validate→interpret latencies with percentile summaries.
- :mod:`repro.obs.timers` — wall-clock hot-path histograms, kept
  strictly *outside* trace identity so traces stay seed-deterministic.
- :mod:`repro.obs.metrics` — typed live-arm metrics (counters, gauges,
  log2 histograms) with associative snapshot merge and canonical JSONL.
- :mod:`repro.obs.diverge` — first-divergence finder over two traces.
"""

from repro.obs.diverge import (
    Divergence,
    first_chain_divergence,
    first_divergence,
    first_event_divergence,
)
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.lifecycle import LifecycleIndex, LifecycleStats, StageSummary
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricPoint,
    MetricsRegistry,
    MetricsReport,
    MetricsSnapshot,
)
from repro.obs.timers import HotPathTimers
from repro.obs.trace import (
    NULL_RECORDER,
    ClusterTracer,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "NULL_RECORDER",
    "ClusterTracer",
    "Counter",
    "Divergence",
    "Gauge",
    "HotPathTimers",
    "LifecycleIndex",
    "LifecycleStats",
    "MetricPoint",
    "MetricsRegistry",
    "MetricsReport",
    "MetricsSnapshot",
    "NullRecorder",
    "StageSummary",
    "TraceEvent",
    "TraceRecorder",
    "first_chain_divergence",
    "first_divergence",
    "first_event_divergence",
    "read_jsonl",
    "write_jsonl",
]
