"""Wall-clock hot-path histograms — strictly outside trace identity.

The flight recorder stamps events with *virtual* time so traces stay
seed-deterministic; real latency attribution needs *wall-clock*
timings of the hot paths (interpret step, codec decode, signature
verify, WAL append/fsync).  :class:`HotPathTimers` holds those
measurements in log2 microsecond histograms and is never consulted by
the recorder — enabling timers cannot perturb a trace's bytes.

Instrumented sites hold ``self.timers`` (``None`` by default) and pay
one ``is not None`` check when timing is off.
"""

from __future__ import annotations

import math
from time import perf_counter

__all__ = ["Histogram", "HotPathTimers", "perf_counter"]

#: Histogram buckets: bucket ``i`` covers durations < 2**i microseconds.
_BUCKETS = 40


class Histogram:
    """A log2 histogram over microseconds with exact count/total/max."""

    __slots__ = ("counts", "count", "total", "max")

    def __init__(self) -> None:
        self.counts = [0] * _BUCKETS
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        us = seconds * 1e6
        index = 0 if us < 1.0 else min(_BUCKETS - 1, int(math.log2(us)) + 1)
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile_us(self, fraction: float) -> float:
        """Upper bucket edge (µs) containing the given quantile."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(fraction * self.count))
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target:
                return float(2**index)
        return float(2 ** (_BUCKETS - 1))

    def summary(self) -> dict[str, float]:
        mean_us = (self.total / self.count * 1e6) if self.count else 0.0
        return {
            "count": float(self.count),
            "total_s": self.total,
            "mean_us": mean_us,
            "p50_us": self.quantile_us(0.50),
            "p99_us": self.quantile_us(0.99),
            "max_us": self.max * 1e6,
        }


class HotPathTimers:
    """Named wall-clock histograms for the stack's hot paths.

    Canonical names: ``interpret-block``, ``codec-decode``,
    ``sig-verify``, ``wal-flush``, ``checkpoint-write``.  Sites create
    histograms on first use, so the vocabulary is open.
    """

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}

    def observe(self, name: str, seconds: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(seconds)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def names(self) -> list[str]:
        return sorted(self._histograms)

    def summary(self) -> dict[str, dict[str, float]]:
        return {name: self._histograms[name].summary() for name in self.names()}

    def render(self) -> str:
        """A small fixed-width table for CLI output."""
        lines = [
            f"{'timer':<18} {'count':>8} {'mean µs':>10} {'p50 µs':>8} "
            f"{'p99 µs':>8} {'max µs':>10}"
        ]
        for name in self.names():
            s = self._histograms[name].summary()
            lines.append(
                f"{name:<18} {int(s['count']):>8} {s['mean_us']:>10.2f} "
                f"{s['p50_us']:>8.0f} {s['p99_us']:>8.0f} {s['max_us']:>10.1f}"
            )
        return "\n".join(lines)

    def timed(self, name: str) -> "_Timed":
        """Context manager convenience for cold paths."""
        return _Timed(self, name)


class _Timed:
    __slots__ = ("_timers", "_name", "_start")

    def __init__(self, timers: HotPathTimers, name: str) -> None:
        self._timers = timers
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timed":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._timers.observe(self._name, perf_counter() - self._start)
