"""JSONL export/load for recorded traces.

One event per line, keys sorted, compact separators — so the bytes of
an exported trace are a pure function of the event stream, and the
"same seed ⇒ byte-identical trace" property can be checked with
``diff``/``cmp`` on files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import ClusterTracer
    from repro.types import ServerId


def event_to_line(event: TraceEvent) -> str:
    """One canonical JSON line (no trailing newline)."""
    return json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> Path:
    """Write events (oldest first) to ``path``, one JSON object per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(event_to_line(event))
            handle.write("\n")
    return path


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a trace written by :func:`write_jsonl`."""
    events: list[TraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def export_tracer(tracer: "ClusterTracer", directory: str | Path) -> dict["ServerId", Path]:
    """Write every server's retained events to ``<directory>/<server>.jsonl``."""
    directory = Path(directory)
    paths: dict["ServerId", Path] = {}
    for server, recorder in sorted(tracer.recorders.items(), key=lambda kv: str(kv[0])):
        paths[server] = write_jsonl(recorder.snapshot(), directory / f"{server}.jsonl")
    return paths
