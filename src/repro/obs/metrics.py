"""Typed live-arm metrics — wall-clock telemetry strictly outside trace identity.

The flight recorder (:mod:`repro.obs.trace`) answers *what happened* in
virtual time; the live arm runs real processes over real sockets and
needs *wall-clock* answers: how deep did a peer queue get, how long did
a reconnect take, what is the seal→interpret latency in milliseconds.
:class:`MetricsRegistry` holds those answers as typed instruments —
counters, gauges, and log2-µs histograms reusing the
:class:`~repro.obs.timers.Histogram` shape — and is never consulted by
the trace recorder, so enabling metrics cannot perturb a trace's bytes.

Snapshots are value objects with an *associative, commutative* merge:

- counters sum their values,
- gauges sum their values and take the max high-water mark,
- histograms sum bucket-wise (count, total, and max fold accordingly),

so a cluster-wide :class:`MetricsReport` is independent of scrape order.
Exports are canonical JSONL (sorted points, sorted keys, no
timestamps): for a fixed seed on the simulated arm the export is
byte-identical run to run.

This module is the sanctioned wall-clock conduit for live telemetry —
the ``no-wall-clock`` lint rule allows exactly ``repro.obs.timers``,
``repro.obs.metrics``, and the scenario runner's wall-clock summary.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, replace
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator, Mapping

from repro.errors import ReproError
from repro.obs.timers import _BUCKETS, Histogram

__all__ = [
    "Counter",
    "Gauge",
    "MetricPoint",
    "MetricsError",
    "MetricsRegistry",
    "MetricsReport",
    "MetricsSnapshot",
    "perf_counter",
]

_KINDS = ("counter", "gauge", "histogram")


class MetricsError(ReproError):
    """A malformed metrics document or a kind mismatch on a name."""


def _label_items(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (frames, drops, retries)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written level plus its high-water mark (queue depth)."""

    __slots__ = ("value", "high_water")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class MetricsRegistry:
    """Named, labelled instruments; get-or-create on first use.

    Instruments are keyed by ``(name, sorted label items)``; asking for
    an existing key with a different kind raises :class:`MetricsError`.
    Hot paths should hold the returned instrument rather than re-resolve
    it per call.
    """

    def __init__(self, server: str | None = None) -> None:
        self.server = server
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get(self, factory: type, name: str, labels: Mapping[str, str]) -> object:
        key = (name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = factory()
        elif not isinstance(instrument, factory):
            raise MetricsError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {factory.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    def timed(self, name: str, **labels: str) -> "_Timed":
        """Context manager observing wall-clock seconds into a histogram."""
        return _Timed(self.histogram(name, **labels))

    def snapshot(self, seq: int = 0) -> "MetricsSnapshot":
        points = []
        for (name, labels), instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                points.append(
                    MetricPoint(name=name, kind="counter", labels=labels,
                                value=instrument.value)
                )
            elif isinstance(instrument, Gauge):
                points.append(
                    MetricPoint(name=name, kind="gauge", labels=labels,
                                value=instrument.value,
                                high_water=instrument.high_water)
                )
            else:
                histogram = instrument
                buckets = tuple(
                    (index, count)
                    for index, count in enumerate(histogram.counts)
                    if count
                )
                points.append(
                    MetricPoint(name=name, kind="histogram", labels=labels,
                                count=histogram.count, total=histogram.total,
                                max=histogram.max, buckets=buckets)
                )
        return MetricsSnapshot(points=tuple(points), server=self.server, seq=seq)


class _Timed:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timed":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._histogram.observe(perf_counter() - self._start)


@dataclass(frozen=True)
class MetricPoint:
    """One instrument's value at snapshot time — a pure value object."""

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0
    high_water: float = 0
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    #: Sparse log2-µs histogram: ``(bucket index, count)`` pairs.
    buckets: tuple[tuple[int, int], ...] = ()

    @property
    def key(self) -> tuple[str, tuple[tuple[str, str], ...]]:
        return (self.name, self.labels)

    def labelled(self, **extra: str) -> "MetricPoint":
        merged = dict(self.labels)
        merged.update({str(k): str(v) for k, v in extra.items()})
        return replace(self, labels=_label_items(merged))

    def merged(self, other: "MetricPoint") -> "MetricPoint":
        if other.key != self.key or other.kind != self.kind:
            raise MetricsError(f"cannot merge {other.key} into {self.key}")
        if self.kind == "counter":
            return replace(self, value=self.value + other.value)
        if self.kind == "gauge":
            return replace(
                self,
                value=self.value + other.value,
                high_water=max(self.high_water, other.high_water),
            )
        folded = dict(self.buckets)
        for index, count in other.buckets:
            folded[index] = folded.get(index, 0) + count
        return replace(
            self,
            count=self.count + other.count,
            total=self.total + other.total,
            max=max(self.max, other.max),
            buckets=tuple(sorted(folded.items())),
        )

    def quantile_us(self, fraction: float) -> float:
        """Upper bucket edge (µs) containing the quantile — histogram only."""
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(fraction * self.count))
        seen = 0
        for index, count in self.buckets:
            seen += count
            if seen >= target:
                return float(2**index)
        return float(2 ** (_BUCKETS - 1))

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "labels": {k: v for k, v in self.labels},
        }
        if self.kind == "counter":
            doc["value"] = self.value
        elif self.kind == "gauge":
            doc["value"] = self.value
            doc["high_water"] = self.high_water
        else:
            doc["count"] = self.count
            doc["total"] = self.total
            doc["max"] = self.max
            doc["buckets"] = [[index, count] for index, count in self.buckets]
        return doc

    @staticmethod
    def from_dict(doc: Mapping[str, object]) -> "MetricPoint":
        try:
            kind = str(doc["kind"])
            if kind not in _KINDS:
                raise MetricsError(f"unknown metric kind {kind!r}")
            return MetricPoint(
                name=str(doc["name"]),
                kind=kind,
                labels=_label_items(doc.get("labels", {})),  # type: ignore[arg-type]
                value=doc.get("value", 0),  # type: ignore[arg-type]
                high_water=doc.get("high_water", 0),  # type: ignore[arg-type]
                count=int(doc.get("count", 0)),  # type: ignore[arg-type]
                total=float(doc.get("total", 0.0)),  # type: ignore[arg-type]
                max=float(doc.get("max", 0.0)),  # type: ignore[arg-type]
                buckets=tuple(
                    (int(index), int(count))
                    for index, count in doc.get("buckets", ())  # type: ignore[union-attr]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MetricsError(f"malformed metric point: {exc}") from exc


@dataclass(frozen=True)
class MetricsSnapshot:
    """A sorted, immutable set of points from one registry (or a merge)."""

    points: tuple[MetricPoint, ...] = ()
    server: str | None = None
    seq: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.points, key=lambda p: p.key))
        object.__setattr__(self, "points", ordered)

    def get(self, name: str, **labels: str) -> MetricPoint | None:
        key = (name, _label_items(labels))
        for point in self.points:
            if point.key == key:
                return point
        return None

    def select(self, name: str, **labels: str) -> Iterator[MetricPoint]:
        """Points with this name whose labels include the given items."""
        want = set(_label_items(labels))
        for point in self.points:
            if point.name == name and want.issubset(point.labels):
                yield point

    def total(self, name: str, **labels: str) -> float:
        """Sum of ``value`` over matching counter/gauge points."""
        return sum(point.value for point in self.select(name, **labels))

    def labelled(self, **extra: str) -> "MetricsSnapshot":
        return replace(
            self, points=tuple(point.labelled(**extra) for point in self.points)
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        folded: dict[tuple[str, tuple[tuple[str, str], ...]], MetricPoint] = {
            point.key: point for point in self.points
        }
        for point in other.points:
            existing = folded.get(point.key)
            folded[point.key] = point if existing is None else existing.merged(point)
        server = self.server if self.server == other.server else None
        return MetricsSnapshot(
            points=tuple(folded.values()),
            server=server,
            seq=max(self.seq, other.seq),
        )

    @staticmethod
    def merge_all(snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        merged = MetricsSnapshot()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    # -- canonical JSONL -------------------------------------------------

    def to_jsonl(self) -> str:
        """One meta line plus one sorted-key line per point — canonical."""
        meta = {"kind": "metrics-meta", "seq": self.seq, "server": self.server}
        lines = [json.dumps(meta, sort_keys=True, separators=(",", ":"))]
        for point in self.points:
            lines.append(
                json.dumps(point.to_dict(), sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str | Path) -> None:
        """Atomic write (tmp + rename) so scrapers never see torn files."""
        target = Path(path)
        tmp = target.with_suffix(target.suffix + ".tmp")
        tmp.write_text(self.to_jsonl(), encoding="utf-8")
        os.replace(tmp, target)

    @staticmethod
    def from_jsonl(text: str) -> "MetricsSnapshot":
        server: str | None = None
        seq = 0
        points = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise MetricsError(f"malformed metrics line: {exc}") from exc
            if doc.get("kind") == "metrics-meta":
                server = doc.get("server")
                seq = int(doc.get("seq", 0))
            else:
                points.append(MetricPoint.from_dict(doc))
        return MetricsSnapshot(points=tuple(points), server=server, seq=seq)

    @staticmethod
    def read_jsonl(path: str | Path) -> "MetricsSnapshot":
        return MetricsSnapshot.from_jsonl(Path(path).read_text(encoding="utf-8"))


@dataclass(frozen=True)
class MetricsReport:
    """Cluster-wide view: per-server snapshots plus an order-independent
    merge in which every point carries a ``server`` label."""

    merged: MetricsSnapshot = MetricsSnapshot()
    by_server: tuple[tuple[str, MetricsSnapshot], ...] = ()

    @staticmethod
    def from_snapshots(
        snapshots: Mapping[str, MetricsSnapshot]
    ) -> "MetricsReport":
        ordered = tuple(sorted(snapshots.items()))
        merged = MetricsSnapshot.merge_all(
            snapshot.labelled(server=server) for server, snapshot in ordered
        )
        return MetricsReport(merged=merged, by_server=ordered)

    def snapshot(self, server: str) -> MetricsSnapshot | None:
        for name, snapshot in self.by_server:
            if name == server:
                return snapshot
        return None

    def top(self, n: int = 10, kind: str | None = None) -> list[MetricPoint]:
        """The n largest points by counter/gauge value or histogram count."""
        points = [
            p for p in self.merged.points if kind is None or p.kind == kind
        ]
        points.sort(
            key=lambda p: (p.count if p.kind == "histogram" else p.value),
            reverse=True,
        )
        return points[:n]

    def render(self, limit: int | None = None) -> str:
        """A fixed-width table of the merged view for CLI output."""
        lines = [
            f"{'metric':<28} {'labels':<26} {'kind':<9} "
            f"{'value':>12} {'p50 µs':>9} {'p99 µs':>9}"
        ]
        points = self.merged.points if limit is None else self.top(limit)
        for p in points:
            labels = ",".join(f"{k}={v}" for k, v in p.labels)
            if p.kind == "histogram":
                value = f"{p.count}"
                p50 = f"{p.quantile_us(0.50):.0f}"
                p99 = f"{p.quantile_us(0.99):.0f}"
            else:
                value = f"{p.value}"
                if p.kind == "gauge" and p.high_water != p.value:
                    value = f"{p.value}/{p.high_water}"
                p50 = p99 = "-"
            lines.append(
                f"{p.name:<28} {labels:<26} {p.kind:<9} {value:>12} "
                f"{p50:>9} {p99:>9}"
            )
        return "\n".join(lines)

    @staticmethod
    def _snapshot_dict(snapshot: MetricsSnapshot) -> dict[str, object]:
        return {
            "server": snapshot.server,
            "seq": snapshot.seq,
            "points": [point.to_dict() for point in snapshot.points],
        }

    @staticmethod
    def _snapshot_from(entry: Mapping[str, object]) -> MetricsSnapshot:
        server = entry.get("server")
        return MetricsSnapshot(
            points=tuple(
                MetricPoint.from_dict(p) for p in entry.get("points", ())  # type: ignore[union-attr]
            ),
            server=None if server is None else str(server),
            seq=int(entry.get("seq", 0)),  # type: ignore[arg-type]
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "merged": self._snapshot_dict(self.merged),
            "by_server": {
                server: self._snapshot_dict(snapshot)
                for server, snapshot in self.by_server
            },
        }

    @staticmethod
    def from_dict(doc: Mapping[str, object]) -> "MetricsReport":
        try:
            merged = MetricsReport._snapshot_from(doc.get("merged", {}))  # type: ignore[arg-type]
            by_server = tuple(
                (str(server), MetricsReport._snapshot_from(entry))
                for server, entry in sorted(doc.get("by_server", {}).items())  # type: ignore[union-attr]
            )
            return MetricsReport(merged=merged, by_server=by_server)
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise MetricsError(f"malformed metrics report: {exc}") from exc
