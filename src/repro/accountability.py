"""Equivocation accountability — the §6 Polygraph remark, implemented.

The paper notes: "we believe nothing precludes our proposed framework
to be adapted to hold equivocating servers accountable, drawing e.g. on
recent work from Polygraph" (§6).  This module does the part that needs
no protocol changes at all: because every block is signed over its
content hash, *two* blocks by the same builder with the same sequence
number are a self-contained, transferable proof of equivocation — any
third party can verify both signatures and conclude misbehaviour,
without trusting the accuser.

:func:`collect_evidence` scans a DAG for such pairs;
:func:`verify_evidence` replays the check from nothing but the
certificate and the public key material.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import KeyRing
from repro.dag.block import Block
from repro.dag.blockdag import BlockDag
from repro.types import SeqNum, ServerId


@dataclass(frozen=True)
class EquivocationEvidence:
    """A transferable certificate that ``culprit`` equivocated at
    sequence ``seq``: two distinct, individually signed blocks."""

    culprit: ServerId
    seq: SeqNum
    block_a: Block
    block_b: Block

    def __post_init__(self) -> None:
        if self.block_a.ref == self.block_b.ref:
            raise ValueError("evidence requires two distinct blocks")


def collect_evidence(dag: BlockDag) -> list[EquivocationEvidence]:
    """All equivocation certificates extractable from ``dag``.

    One certificate per culprit/sequence pair (the first two branches;
    more branches add nothing to the verdict).
    """
    evidence = []
    for (culprit, seq), blocks in sorted(dag.forks().items()):
        evidence.append(
            EquivocationEvidence(
                culprit=culprit,
                seq=seq,
                block_a=blocks[0],
                block_b=blocks[1],
            )
        )
    return evidence


def verify_evidence(evidence: EquivocationEvidence, keyring: KeyRing) -> bool:
    """Re-check a certificate from scratch: both blocks must carry the
    culprit's identity and sequence number, be distinct in content, and
    verify under the culprit's key.

    This is everything a judge needs — no DAG, no network history, no
    trust in whoever produced the certificate.
    """
    a, b = evidence.block_a, evidence.block_b
    if a.n != evidence.culprit or b.n != evidence.culprit:
        return False
    if a.k != evidence.seq or b.k != evidence.seq:
        return False
    if a.ref == b.ref:
        return False
    for block in (a, b):
        if not keyring.verify(block.n, block.signing_payload(), block.sigma):
            return False
    return True


def audit(dag: BlockDag, keyring: KeyRing) -> dict[ServerId, list[EquivocationEvidence]]:
    """Scan, verify, and group all evidence in a DAG by culprit.

    Only certificates that pass :func:`verify_evidence` are returned —
    a corrupted store cannot frame a correct server, because framing
    would require forging its signature.
    """
    verdicts: dict[ServerId, list[EquivocationEvidence]] = {}
    for evidence in collect_evidence(dag):
        if verify_evidence(evidence, keyring):
            verdicts.setdefault(evidence.culprit, []).append(evidence)
    return verdicts
