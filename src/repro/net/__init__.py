"""Simulated network substrate (paper §2, Assumption 1).

The only network assumption the block DAG layer needs is *reliable
delivery*: a block sent between two correct servers eventually arrives.
The discrete-event simulator guarantees exactly that while modelling
latency, reordering, duplication, byzantine-link loss, and healing
partitions — everything needed to exercise the gossip protocol's
forwarding machinery and the liveness arguments.

* :mod:`repro.net.message` — wire envelopes (blocks and FWD requests).
* :mod:`repro.net.latency` — pluggable latency models.
* :mod:`repro.net.faults` — fault plans (loss, duplication, partitions).
* :mod:`repro.net.simulator` — the event-driven core.
* :mod:`repro.net.transport` — per-server transport facade.
"""

from repro.net.faults import FaultPlan, HealingPartition, LinkFaults
from repro.net.latency import FixedLatency, JitterLatency, LatencyModel, PerLinkLatency
from repro.net.message import BlockEnvelope, Envelope, FwdRequestEnvelope
from repro.net.simulator import NetworkSimulator
from repro.net.transport import SimTransport, Transport

__all__ = [
    "BlockEnvelope",
    "Envelope",
    "FaultPlan",
    "FixedLatency",
    "FwdRequestEnvelope",
    "HealingPartition",
    "JitterLatency",
    "LatencyModel",
    "LinkFaults",
    "NetworkSimulator",
    "PerLinkLatency",
    "SimTransport",
    "Transport",
]
