"""Discrete-event network simulator.

A single-threaded event loop with a virtual clock: messages and timers
are heap-ordered events; running the simulation drains the heap.  The
loop is deterministic for a fixed seed — the foundation for replaying
"eventually" arguments as bounded checks.

Two kinds of events exist:

* **delivery** — a message handed to the destination's handler;
* **timer** — an arbitrary callback (gossip uses these for FWD retries
  and the cluster runtime for dissemination cadence).

The simulator also keeps the wire metrics (message and byte counters,
per envelope kind) that every benchmark reads.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError
from repro.net.faults import FaultPlan
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import BlockEnvelope, Envelope, FwdRequestEnvelope
from repro.types import ServerId

#: Handler invoked on delivery: ``handler(source, envelope)``.
Handler = Callable[[ServerId, Envelope], None]


def _envelope_ref(envelope: Envelope) -> str | None:
    """The block reference an envelope is about, if any (trace labels)."""
    if isinstance(envelope, BlockEnvelope):
        return str(envelope.block.ref)
    if isinstance(envelope, FwdRequestEnvelope):
        return str(envelope.ref)
    return None


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


@dataclass
class WireMetrics:
    """Counters of what actually crossed the simulated wire."""

    messages: int = 0
    bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, envelope: Envelope) -> None:
        kind = type(envelope).__name__
        size = envelope.wire_size()
        self.messages += 1
        self.bytes += size
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size


class NetworkSimulator:
    """The event loop connecting all simulated servers.

    Parameters
    ----------
    latency:
        Delay model for deliveries (default: fixed 1.0).
    seed:
        Seed for the simulation RNG (latency jitter, fault coin flips).
    faults:
        Fault plan; defaults to fault-free.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        seed: int = 0,
        faults: FaultPlan | None = None,
    ) -> None:
        self.latency = latency if latency is not None else FixedLatency()
        self.faults = faults if faults is not None else FaultPlan.none()
        self.rng = random.Random(seed)
        self.now = 0.0
        self.metrics = WireMetrics()
        self.delivered_count = 0
        self.dropped_count = 0
        self._heap: list[_Event] = []
        self._seq = 0
        self._handlers: dict[ServerId, Handler] = {}
        #: Per-server flight recorders (``repro.obs``).  Empty — the
        #: default — means tracing is off and the send/deliver paths
        #: pay a single truthiness check.
        self.tracers: dict[ServerId, object] = {}

    # -- wiring ---------------------------------------------------------------

    def register(self, server: ServerId, handler: Handler) -> None:
        """Attach ``server``'s receive handler."""
        if server in self._handlers:
            raise NetworkError(f"server already registered: {server!r}")
        self._handlers[server] = handler

    def replace_handler(self, server: ServerId, handler: Handler) -> None:
        """Swap a handler (used by adversaries hijacking a server)."""
        if server not in self._handlers:
            raise NetworkError(f"server not registered: {server!r}")
        self._handlers[server] = handler

    # -- sending ---------------------------------------------------------------

    def send(self, src: ServerId, dst: ServerId, envelope: Envelope) -> None:
        """Submit a message; the fault plan and latency model decide the
        rest.  Self-sends are legal and go through the same path."""
        if dst not in self._handlers:
            raise NetworkError(f"unknown destination: {dst!r}")
        self.metrics.record(envelope)
        if self.tracers:
            tracer = self.tracers.get(src)
            if tracer is not None:
                tracer.emit(  # type: ignore[attr-defined]
                    "wire-send",
                    block=_envelope_ref(envelope),
                    peer=dst,
                    envelope=type(envelope).__name__,
                    bytes=envelope.wire_size(),
                )
        disposition = self.faults.disposition(src, dst, self.now, self.rng)
        if disposition.drop:
            self.dropped_count += 1
            return
        for _ in range(disposition.copies):
            delay = self.latency.sample(src, dst, self.rng) + disposition.extra_delay
            self._push(delay, lambda s=src, d=dst, e=envelope: self._deliver(s, d, e))

    def _deliver(self, src: ServerId, dst: ServerId, envelope: Envelope) -> None:
        handler = self._handlers.get(dst)
        if handler is None:  # pragma: no cover - handlers never deregister
            return
        self.delivered_count += 1
        if self.tracers:
            tracer = self.tracers.get(dst)
            if tracer is not None:
                tracer.emit(  # type: ignore[attr-defined]
                    "wire-recv",
                    block=_envelope_ref(envelope),
                    peer=src,
                    envelope=type(envelope).__name__,
                    bytes=envelope.wire_size(),
                )
        handler(src, envelope)

    # -- timers ---------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` time units."""
        if delay < 0:
            raise NetworkError(f"negative delay: {delay}")
        self._push(delay, action)

    def _push(self, delay: float, action: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, _Event(self.now + delay, self._seq, action))

    # -- running ---------------------------------------------------------------

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._heap)

    def step(self) -> bool:
        """Process one event; returns ``False`` when the heap is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = event.time
        event.action()
        return True

    def run(self, max_events: int | None = None, until: float | None = None) -> int:
        """Drain events until idle, ``max_events``, or virtual ``until``.

        Returns the number of events processed.  ``until`` leaves later
        events queued and advances the clock to exactly ``until``.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            if until is not None and self._heap[0].time > until:
                break
            self.step()
            processed += 1
        if (
            until is not None
            and self.now < until
            and (not self._heap or self._heap[0].time > until)
        ):
            # The documented contract: the clock ends at exactly
            # ``until`` even when the heap drains early (but never
            # jumps past events a max_events break left pending).
            # Round-driven callers — the cluster, fault timelines
            # compiled from round indices — rely on round r spanning
            # exactly [r·duration, (r+1)·duration) of virtual time.
            self.now = until
        return processed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain all events; raises if the budget is exhausted (a live
        lock in the system under test)."""
        processed = self.run(max_events=max_events)
        if self._heap:
            raise NetworkError(
                f"simulation still live after {max_events} events — "
                f"possible message storm"
            )
        return processed
