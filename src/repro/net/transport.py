"""Per-server transport facade.

Gossip modules talk to a :class:`Transport`, never to the simulator
directly.  That keeps Algorithm 1's code shaped like the paper's
pseudocode ("send B to every s' ∈ Srvrs") and lets the same gossip
implementation run over the discrete-event simulator or over the
key-value-store substrate (:mod:`repro.kvstore.blockstore`) unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.net.message import Envelope
from repro.net.simulator import NetworkSimulator
from repro.types import ServerId


class Transport(ABC):
    """What a gossip module may do to the outside world."""

    @property
    @abstractmethod
    def self_id(self) -> ServerId:
        """The server this transport belongs to."""

    @property
    @abstractmethod
    def now(self) -> float:
        """Current (virtual) time — used only for retry pacing."""

    @abstractmethod
    def send(self, dst: ServerId, envelope: Envelope) -> None:
        """Send one envelope to ``dst``."""

    @abstractmethod
    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` (timer facility for retries)."""

    def broadcast(self, servers: Sequence[ServerId], envelope: Envelope) -> None:
        """Send to every listed server except this one."""
        for server in servers:
            if server != self.self_id:
                self.send(server, envelope)


class SimTransport(Transport):
    """Transport bound to one server on a :class:`NetworkSimulator`."""

    def __init__(self, simulator: NetworkSimulator, self_id: ServerId) -> None:
        self._sim = simulator
        self._self_id = self_id

    @property
    def self_id(self) -> ServerId:
        return self._self_id

    @property
    def now(self) -> float:
        return self._sim.now

    def send(self, dst: ServerId, envelope: Envelope) -> None:
        self._sim.send(self._self_id, dst, envelope)

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        self._sim.schedule(delay, action)
