"""Per-server transport facade.

Gossip modules talk to a :class:`Transport`, never to the simulator
directly.  That keeps Algorithm 1's code shaped like the paper's
pseudocode ("send B to every s' ∈ Srvrs") and lets the same gossip
implementation run over the discrete-event simulator or over the
key-value-store substrate (:mod:`repro.kvstore.blockstore`) unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.net.message import Envelope
from repro.net.simulator import NetworkSimulator
from repro.types import ServerId


class Transport(ABC):
    """What a gossip module may do to the outside world."""

    @property
    @abstractmethod
    def self_id(self) -> ServerId:
        """The server this transport belongs to."""

    @property
    @abstractmethod
    def now(self) -> float:
        """Current (virtual) time — used only for retry pacing."""

    @abstractmethod
    def send(self, dst: ServerId, envelope: Envelope) -> None:
        """Send one envelope to ``dst``."""

    @abstractmethod
    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` (timer facility for retries)."""

    def broadcast(self, servers: Sequence[ServerId], envelope: Envelope) -> None:
        """Send to every listed server except this one."""
        for server in servers:
            if server != self.self_id:
                self.send(server, envelope)


class RevocableTransport(Transport):
    """A transport that can be cut off — the egress half of a crash.

    The cluster runtime wraps each correct server's transport in one of
    these when a :class:`~repro.runtime.cluster.CrashPlan` is active.
    Crashing a server revokes its transport: pending timer callbacks of
    the dead incarnation (FWD retries heap-scheduled before the crash)
    may still fire, but anything they try to send or schedule is
    silently dropped, exactly as if the process were gone.
    """

    def __init__(self, inner: Transport) -> None:
        self._inner = inner
        self._revoked = False

    def revoke(self) -> None:
        """Cut this transport off permanently (the server crashed)."""
        self._revoked = True

    @property
    def revoked(self) -> bool:
        return self._revoked

    @property
    def self_id(self) -> ServerId:
        return self._inner.self_id

    @property
    def now(self) -> float:
        return self._inner.now

    def send(self, dst: ServerId, envelope: Envelope) -> None:
        if not self._revoked:
            self._inner.send(dst, envelope)

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        if not self._revoked:
            self._inner.schedule(delay, action)

    def broadcast(self, servers: Sequence[ServerId], envelope: Envelope) -> None:
        if not self._revoked:
            self._inner.broadcast(servers, envelope)


class SimTransport(Transport):
    """Transport bound to one server on a :class:`NetworkSimulator`."""

    def __init__(self, simulator: NetworkSimulator, self_id: ServerId) -> None:
        self._sim = simulator
        self._self_id = self_id

    @property
    def self_id(self) -> ServerId:
        return self._self_id

    @property
    def now(self) -> float:
        return self._sim.now

    def send(self, dst: ServerId, envelope: Envelope) -> None:
        self._sim.send(self._self_id, dst, envelope)

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        self._sim.schedule(delay, action)
