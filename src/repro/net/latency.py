"""Latency models for the simulated network.

Each model maps a (source, destination, rng) triple to a positive
delivery delay.  Models draw only from the RNG handed to them, so a
seeded simulation replays identically — a property the test suite uses
to make every "eventually" in the paper's lemmas a bounded, checkable
statement.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.types import ServerId


class LatencyModel(ABC):
    """Maps links to delivery delays."""

    @abstractmethod
    def sample(self, src: ServerId, dst: ServerId, rng: random.Random) -> float:
        """A delay (> 0) for one message on the link ``src → dst``."""


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError(f"latency must be positive, got {delay}")
        self.delay = delay

    def sample(self, src: ServerId, dst: ServerId, rng: random.Random) -> float:
        return self.delay


class JitterLatency(LatencyModel):
    """Uniform latency in ``[low, high]`` — enough to produce arbitrary
    reordering between independent messages."""

    def __init__(self, low: float = 0.5, high: float = 1.5) -> None:
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, src: ServerId, dst: ServerId, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class PerLinkLatency(LatencyModel):
    """Explicit per-link delays with a default — models geographic
    spread (e.g. two 'datacenters' with cheap intra-DC links)."""

    def __init__(
        self,
        links: dict[tuple[ServerId, ServerId], float],
        default: float = 1.0,
    ) -> None:
        self.links = dict(links)
        self.default = default

    def sample(self, src: ServerId, dst: ServerId, rng: random.Random) -> float:
        return self.links.get((src, dst), self.default)
