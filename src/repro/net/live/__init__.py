"""``repro.net.live`` — the real-socket transport subsystem.

Everything event-loop-shaped in the networking layer lives under this
package (and ``repro.runtime.live``); the ``no-thread-no-asyncio``
lint rule allows ``asyncio`` here and nowhere else, so the
deterministic core — gossip, interpreter, DAG — stays provably
single-threaded and clock-free.  The seam is the existing
:class:`~repro.net.transport.Transport` ABC: gossip drives a
:class:`~repro.net.live.transport.LiveTransport` exactly as it drives
the simulator's :class:`~repro.net.transport.SimTransport`.
"""

from repro.net.live.framing import (
    FrameDecoder,
    FrameStats,
    Hello,
    encode_frame,
    register_wire_types,
)
from repro.net.live.transport import LiveTransport, parse_address

__all__ = [
    "FrameDecoder",
    "FrameStats",
    "Hello",
    "LiveTransport",
    "encode_frame",
    "parse_address",
    "register_wire_types",
]
