"""``LiveTransport`` — the :class:`~repro.net.transport.Transport` ABC
over real sockets.

One instance serves one server process: it listens on the server's own
address (UDS path or TCP ``host:port``), dials every peer lazily, and
carries the same two gossip envelopes the simulator carries — framed by
:mod:`repro.net.live.framing` over the canonical codec.

Design points, mirroring what the discrete-event simulator guarantees
for free:

* **Per-peer outbound queues.**  ``send`` never blocks the caller (the
  gossip hot path): envelopes join a bounded per-peer deque and a pump
  task drains it over the connection.  When a peer is down the queue
  retains traffic across reconnects, so a restarted peer receives the
  backlog — the live analogue of the simulator's in-flight heap.  On
  overflow the *oldest* envelope is dropped (gossip's FWD chasing and
  the node's tip beacon recover anything a drop loses).
* **Reconnect with jittered exponential backoff.**  Dial failures back
  off up to ``reconnect_ceiling`` with per-link seeded jitter, so a
  4-process cluster starting simultaneously does not stampede.
* **Backpressure.**  The pump awaits ``drain()`` after every write, so
  a slow peer's TCP window throttles its queue drain instead of
  buffering unboundedly in the kernel; the bounded deque caps what a
  dead peer can pin in user space.
* **Flight-recorder wire events.**  ``wire-send``/``wire-recv`` are
  emitted with the same fields as the simulator's, so the lifecycle
  index and ``trace diff`` work identically on live traces.
* **Per-peer wall-clock metrics.**  Queue depth/high-water, frames and
  bytes in/out, oldest-drops, dial retries vs. attributable reconnects
  (``conn-lost`` → re-establishment), handshake latency, and decoder
  damage (resyncs, CRC failures) land in a
  :class:`~repro.obs.metrics.MetricsRegistry` — never in the trace, so
  enabling metrics cannot change a trace's bytes.

The event loop never leaks past this module's boundary: gossip calls
``send``/``schedule`` synchronously, and inbound frames call the
handler synchronously from the reader task — single-threaded, like
every other transport.
"""

from __future__ import annotations

import asyncio
import os
import random
from collections import deque
from typing import Callable, Mapping

from repro.errors import NetworkError
from repro.net.live.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    Hello,
    encode_frame,
    register_wire_types,
)
from repro.net.message import Envelope
from repro.net.simulator import WireMetrics, _envelope_ref
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_RECORDER
from repro.types import ServerId

#: Handler invoked on delivery: ``handler(source, envelope)``.
Handler = Callable[[ServerId, Envelope], None]

_CONNECT_ERRORS = (ConnectionError, OSError, asyncio.IncompleteReadError)


class _PeerMeters:
    """Pre-resolved egress instruments for one peer (hot-path cheap)."""

    __slots__ = (
        "queue_depth",
        "queue_drops",
        "frames_out",
        "bytes_out",
        "connect_retries",
        "reconnects",
        "conn_lost",
        "handshake",
    )

    def __init__(self, registry: MetricsRegistry, peer: ServerId) -> None:
        p = str(peer)
        self.queue_depth = registry.gauge("transport.queue-depth", peer=p)
        self.queue_drops = registry.counter("transport.queue-drops", peer=p)
        self.frames_out = registry.counter("transport.frames-out", peer=p)
        self.bytes_out = registry.counter("transport.bytes-out", peer=p)
        self.connect_retries = registry.counter("transport.connect-retries", peer=p)
        self.reconnects = registry.counter("transport.reconnects", peer=p)
        self.conn_lost = registry.counter("transport.conn-lost", peer=p)
        self.handshake = registry.histogram("transport.handshake", peer=p)


class _IngressMeters:
    """Pre-resolved ingress instruments for one source (or ``unknown``)."""

    __slots__ = (
        "frames_in",
        "bytes_in",
        "resyncs",
        "crc_failures",
        "decode_failures",
        "bytes_skipped",
    )

    def __init__(self, registry: MetricsRegistry, src: str) -> None:
        self.frames_in = registry.counter("transport.frames-in", peer=src)
        self.bytes_in = registry.counter("transport.bytes-in", peer=src)
        self.resyncs = registry.counter("transport.resyncs", peer=src)
        self.crc_failures = registry.counter("transport.crc-failures", peer=src)
        self.decode_failures = registry.counter(
            "transport.decode-failures", peer=src
        )
        self.bytes_skipped = registry.counter("transport.bytes-skipped", peer=src)


def parse_address(address: str) -> tuple[str, object]:
    """Parse ``unix:/path/to.sock`` or ``tcp:host:port``.

    Returns ``("unix", path)`` or ``("tcp", (host, port))``.
    """
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise NetworkError(f"empty UDS path in address {address!r}")
        return "unix", path
    if address.startswith("tcp:"):
        rest = address[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise NetworkError(
                f"bad TCP address {address!r} (expected tcp:host:port)"
            )
        return "tcp", (host, int(port))
    raise NetworkError(
        f"bad address {address!r} (expected unix:<path> or tcp:<host>:<port>)"
    )


class LiveTransport(Transport):
    """A server's socket endpoint: listener, per-peer dialers, queues.

    Parameters
    ----------
    self_id:
        This server's identity.
    addresses:
        Address of *every* server in the cluster, this one included
        (its entry is the listen address).
    handler:
        Ingress callback ``(src, envelope)``; may also be assigned
        after construction (the shim is built around the transport).
    tracer:
        Optional flight recorder for ``wire-send``/``wire-recv``.
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`;
        one is created per transport when not given.  Metrics live
        strictly outside trace identity.
    seed:
        Seeds the per-link backoff jitter.
    max_queue:
        Bound of each per-peer outbound deque.
    """

    def __init__(
        self,
        self_id: ServerId,
        addresses: Mapping[ServerId, str],
        handler: Handler | None = None,
        tracer: object | None = None,
        metrics: MetricsRegistry | None = None,
        *,
        seed: int = 0,
        max_queue: int = 4096,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        reconnect_floor: float = 0.05,
        reconnect_ceiling: float = 1.0,
    ) -> None:
        register_wire_types()
        if self_id not in addresses:
            raise NetworkError(f"no listen address for {self_id!r}")
        self._self_id = self_id
        self.addresses: dict[ServerId, str] = dict(addresses)
        self.handler = handler
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.seed = seed
        self.max_queue = max_queue
        self.max_frame_bytes = max_frame_bytes
        self.reconnect_floor = reconnect_floor
        self.reconnect_ceiling = reconnect_ceiling
        self.metrics = WireMetrics()
        self.live_metrics = (
            metrics if metrics is not None else MetricsRegistry(server=str(self_id))
        )
        self.delivered_count = 0
        self.dropped_overflow = 0
        self.reconnects = 0
        self.frames_damaged = 0
        #: Set when an orderly shutdown begins: connection losses during
        #: teardown are expected and must not count as disturbances.
        self.closing = False
        self._peer_meters: dict[ServerId, _PeerMeters] = {}
        self._ingress_meters: dict[str, _IngressMeters] = {}
        self._queues: dict[ServerId, deque[Envelope]] = {}
        self._wakeups: dict[ServerId, asyncio.Event] = {}
        self._writers: dict[ServerId, asyncio.StreamWriter] = {}
        self._tasks: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- Transport ABC ---------------------------------------------------------

    @property
    def self_id(self) -> ServerId:
        return self._self_id

    @property
    def now(self) -> float:
        """Monotonic loop time — CLOCK_MONOTONIC, comparable across
        processes on one machine (what the lifecycle stage joins need)."""
        if self._loop is None:
            return 0.0
        return self._loop.time()

    def send(self, dst: ServerId, envelope: Envelope) -> None:
        """Queue one envelope for ``dst``; never blocks."""
        self.metrics.record(envelope)
        if self.tracer.enabled:
            self.tracer.emit(  # type: ignore[attr-defined]
                "wire-send",
                block=_envelope_ref(envelope),
                peer=dst,
                envelope=type(envelope).__name__,
                bytes=envelope.wire_size(),
            )
        if dst == self._self_id:
            # Self-sends are legal on every transport; loop back
            # asynchronously to preserve "send returns before delivery".
            if self._loop is not None:
                self._loop.call_soon(self._deliver, dst, envelope)
            return
        queue = self._queues.get(dst)
        if queue is None:
            raise NetworkError(f"unknown destination: {dst!r}")
        meters = self._egress(dst)
        if len(queue) >= self.max_queue:
            queue.popleft()
            self.dropped_overflow += 1
            meters.queue_drops.inc()
        queue.append(envelope)
        meters.queue_depth.set(len(queue))
        self._wakeups[dst].set()

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` seconds of loop time."""
        if self._loop is None:
            raise NetworkError("transport not started")
        self._loop.call_later(delay, action)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start one pump task per peer."""
        self._loop = asyncio.get_running_loop()
        kind, target = parse_address(self.addresses[self._self_id])
        if kind == "unix":
            path = str(target)
            # A previous incarnation's socket file blocks rebinding —
            # each server owns its path, so a stale one is safe to clear.
            if os.path.exists(path):
                os.unlink(path)
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=path
            )
        else:
            host, port = target  # type: ignore[misc]
            self._server = await asyncio.start_server(
                self._serve_connection, host=host, port=port
            )
        for peer in self.addresses:
            if peer == self._self_id:
                continue
            self._queues[peer] = deque()
            self._wakeups[peer] = asyncio.Event()
            self._egress(peer)
            self._tasks.append(self._loop.create_task(self._pump(peer)))

    async def stop(self) -> None:
        """Cancel pumps, close the listener and every open connection."""
        self.closing = True
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def queued(self, dst: ServerId) -> int:
        """Envelopes waiting in ``dst``'s outbound queue."""
        return len(self._queues.get(dst, ()))

    # -- metric handles --------------------------------------------------------

    def _egress(self, peer: ServerId) -> _PeerMeters:
        meters = self._peer_meters.get(peer)
        if meters is None:
            meters = self._peer_meters[peer] = _PeerMeters(
                self.live_metrics, peer
            )
        return meters

    def _ingress(self, src: str) -> _IngressMeters:
        meters = self._ingress_meters.get(src)
        if meters is None:
            meters = self._ingress_meters[src] = _IngressMeters(
                self.live_metrics, src
            )
        return meters

    # -- ingress ---------------------------------------------------------------

    def _deliver(self, src: ServerId, envelope: Envelope) -> None:
        self.delivered_count += 1
        if self.tracer.enabled:
            self.tracer.emit(  # type: ignore[attr-defined]
                "wire-recv",
                block=_envelope_ref(envelope),
                peer=src,
                envelope=type(envelope).__name__,
                bytes=envelope.wire_size(),
            )
        if self.handler is not None:
            self.handler(src, envelope)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One inbound connection: Hello first, then envelopes."""
        decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        src: ServerId | None = None
        meters = self._ingress("unknown")
        damage_seen = (0, 0, 0, 0)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                meters.bytes_in.inc(len(chunk))
                for value in decoder.feed(chunk):
                    if isinstance(value, Hello):
                        src = ServerId(value.server)
                        meters = self._ingress(str(src))
                    elif src is not None and isinstance(value, Envelope):
                        meters.frames_in.inc()
                        self._deliver(src, value)
                    else:
                        # Envelope before Hello, or a non-envelope
                        # value: attributable to nobody — drop it.
                        self.frames_damaged += 1
                # Decoder damage stats are cumulative per connection;
                # attribute this chunk's delta to the current source.
                stats = decoder.stats
                now_seen = (
                    stats.resyncs,
                    stats.crc_failures,
                    stats.decode_failures,
                    stats.bytes_skipped,
                )
                if now_seen != damage_seen:
                    meters.resyncs.inc(now_seen[0] - damage_seen[0])
                    meters.crc_failures.inc(now_seen[1] - damage_seen[1])
                    meters.decode_failures.inc(now_seen[2] - damage_seen[2])
                    meters.bytes_skipped.inc(now_seen[3] - damage_seen[3])
                    damage_seen = now_seen
        except asyncio.CancelledError:
            # Loop shutdown (asyncio.run cancels the handler tasks the
            # listener spawned): finish quietly so the streams machinery
            # doesn't log the cancellation as an error.
            pass
        except _CONNECT_ERRORS:
            pass
        finally:
            self.frames_damaged += (
                decoder.stats.crc_failures + decoder.stats.decode_failures
            )
            writer.close()

    # -- egress ----------------------------------------------------------------

    async def _connect(self, peer: ServerId) -> asyncio.StreamWriter:
        kind, target = parse_address(self.addresses[peer])
        if kind == "unix":
            _, writer = await asyncio.open_unix_connection(path=str(target))
        else:
            host, port = target  # type: ignore[misc]
            _, writer = await asyncio.open_connection(host=host, port=port)
        writer.write(encode_frame(Hello(str(self._self_id))))
        await writer.drain()
        return writer

    async def _pump(self, peer: ServerId) -> None:
        """Drain ``peer``'s queue over one (re-established) connection."""
        rng = random.Random(f"{self._self_id}->{peer}#{self.seed}")
        backoff = self.reconnect_floor
        queue = self._queues[peer]
        wakeup = self._wakeups[peer]
        meters = self._egress(peer)
        writer: asyncio.StreamWriter | None = None
        lost_established = False
        loop = asyncio.get_running_loop()
        try:
            while True:
                if writer is None:
                    dial_started = loop.time()
                    try:
                        writer = await self._connect(peer)
                    except _CONNECT_ERRORS:
                        self.reconnects += 1
                        meters.connect_retries.inc()
                        await asyncio.sleep(backoff * (0.5 + rng.random()))
                        backoff = min(backoff * 2, self.reconnect_ceiling)
                        continue
                    meters.handshake.observe(loop.time() - dial_started)
                    if lost_established:
                        # Re-established after losing a live connection —
                        # the attributable "reconnect" (dial retries
                        # during the initial stampede don't count).
                        meters.reconnects.inc()
                        lost_established = False
                    self._writers[peer] = writer
                    backoff = self.reconnect_floor
                if not queue:
                    wakeup.clear()
                    if not queue:  # re-check: set() may have raced clear()
                        await wakeup.wait()
                    continue
                envelope = queue[0]
                frame = encode_frame(envelope)
                try:
                    writer.write(frame)
                    await writer.drain()
                except _CONNECT_ERRORS:
                    self._drop_writer(peer)
                    writer = None
                    if not self.closing:
                        meters.conn_lost.inc()
                        lost_established = True
                    continue
                # Popped only after a successful write: a write that
                # died mid-frame is retried on the next connection (the
                # decoder on the far side resyncs past the torn frame).
                queue.popleft()
                meters.frames_out.inc()
                meters.bytes_out.inc(len(frame))
                meters.queue_depth.set(len(queue))
        finally:
            self._drop_writer(peer)

    def _drop_writer(self, peer: ServerId) -> None:
        writer = self._writers.pop(peer, None)
        if writer is not None:
            writer.close()
