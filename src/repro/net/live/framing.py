"""Length-prefixed wire framing over the canonical codec.

A TCP/UDS byte stream has no message boundaries, so every envelope is
shipped as one *frame*::

    MAGIC (2 bytes) | payload length (4 bytes, big-endian)
    | CRC32 of payload (4 bytes, big-endian) | payload

where the payload is the canonical codec encoding
(:mod:`repro.dag.codec`) of the envelope.  The format deliberately
mirrors the WAL's CRC-framed records: the codec already guarantees an
injective, cross-process-stable byte form for every wire dataclass, so
framing only has to solve boundaries and corruption.

:class:`FrameDecoder` is a streaming decoder: feed it arbitrary byte
chunks (however the socket sliced them) and it yields complete decoded
values.  It resynchronizes on garbage — a partial write from a killed
peer, line noise, a bad CRC — by scanning forward to the next MAGIC,
so one damaged frame never poisons the rest of the stream.

The codec registry is per-process: the *receiving* process must know
every dataclass that can appear on the wire before decoding it.
:func:`register_wire_types` registers the gossip envelopes and the
handshake; protocol request types self-register when the protocol
module is imported (the node entrypoint resolves the protocol before
opening any socket).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

from repro.dag import codec
from repro.dag.block import Block
from repro.errors import CodecError
from repro.net.message import BlockEnvelope, FwdRequestEnvelope

#: Frame start marker.  Two bytes that never begin a codec value (codec
#: tags are ASCII letters), so a scan-for-magic resync cannot lock onto
#: the interior of a well-formed payload's first bytes.
MAGIC = b"\xc4\x11"

#: MAGIC + length (4) + CRC32 (4).
HEADER_SIZE = 10

#: Refuse frames larger than this (a corrupt length field must not make
#: the decoder buffer gigabytes while waiting for a frame that never
#: completes).
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class Hello:
    """The connection handshake: the dialing server introduces itself.

    TCP/UDS connections identify an address, not a server; gossip
    handlers want ``(source server, envelope)``.  The first frame on
    every outbound connection is a ``Hello`` naming the dialer, and the
    accepting side attributes all later frames on that connection to
    it.  Identity is still *not* trusted from the handshake alone —
    block signatures are verified by gossip regardless of who relayed
    them, exactly as in the simulator.
    """

    server: str


def register_wire_types() -> None:
    """Register every dataclass that crosses the wire for decoding.

    Idempotent; call it in any process that will *receive* frames.
    (Encoding auto-registers, which is why the simulator never needed
    this — sender and receiver were the same process.)
    """
    codec.register_dataclass(Block)
    codec.register_dataclass(BlockEnvelope)
    codec.register_dataclass(FwdRequestEnvelope)
    codec.register_dataclass(Hello)


def encode_frame(value: Any) -> bytes:
    """One complete frame carrying ``value``."""
    payload = codec.encode(value)
    return b"".join(
        (
            MAGIC,
            len(payload).to_bytes(4, "big"),
            (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big"),
            payload,
        )
    )


@dataclass
class FrameStats:
    """What a :class:`FrameDecoder` saw, for transport metrics."""

    frames_decoded: int = 0
    bytes_skipped: int = 0
    resyncs: int = 0
    crc_failures: int = 0
    decode_failures: int = 0


class FrameDecoder:
    """Streaming frame decoder tolerant of partial frames and garbage.

    ``feed(chunk)`` buffers arbitrary byte chunks and returns the list
    of values whose frames completed; incomplete tails stay buffered.
    Damage handling:

    * bytes before the next MAGIC are skipped (counted in
      ``stats.bytes_skipped``; each skip run is one resync);
    * an implausible length or failed CRC skips one byte and rescans —
      a frame boundary misread as MAGIC cannot swallow real frames;
    * a CRC-valid payload the codec rejects is dropped whole
      (``stats.decode_failures``) — the framing was intact, the content
      was not ours.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self.stats = FrameStats()
        self._buffer = bytearray()

    def pending_bytes(self) -> int:
        """Buffered bytes not yet consumed by a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[Any]:
        """Buffer ``chunk``; return all newly completed values."""
        self._buffer += chunk
        values: list[Any] = []
        while True:
            value = self._next_frame()
            if value is _NEED_MORE:
                return values
            if value is not _SKIPPED:
                values.append(value)

    def _skip(self, count: int) -> None:
        del self._buffer[:count]
        self.stats.bytes_skipped += count
        self.stats.resyncs += 1

    def _next_frame(self) -> Any:
        buffer = self._buffer
        start = buffer.find(MAGIC)
        if start == -1:
            # No frame start in sight: drop everything except a
            # possible first magic byte dangling at the very end.
            keep = 1 if buffer.endswith(MAGIC[:1]) else 0
            if len(buffer) > keep:
                self._skip(len(buffer) - keep)
            return _NEED_MORE
        if start > 0:
            self._skip(start)
        if len(buffer) < HEADER_SIZE:
            return _NEED_MORE
        length = int.from_bytes(buffer[2:6], "big")
        if length > self.max_frame_bytes:
            # Corrupt length (or not really a frame start): advance one
            # byte so the scan can find the true next MAGIC.
            self._skip(1)
            return _SKIPPED
        end = HEADER_SIZE + length
        if len(buffer) < end:
            return _NEED_MORE
        crc = int.from_bytes(buffer[6:HEADER_SIZE], "big")
        payload = bytes(buffer[HEADER_SIZE:end])
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            self.stats.crc_failures += 1
            self._skip(1)
            return _SKIPPED
        del buffer[:end]
        try:
            value = codec.decode(payload)
        except CodecError:
            self.stats.decode_failures += 1
            return _SKIPPED
        self.stats.frames_decoded += 1
        return value


#: Sentinels distinguishing "wait for more bytes" from "frame consumed
#: but produced nothing" — both distinct from any decodable value.
_NEED_MORE = object()
_SKIPPED = object()
