"""Network fault injection — everything Assumption 1 still permits.

Assumption 1 (reliable delivery) only constrains links between two
*correct* servers: messages may be delayed, duplicated and reordered
arbitrarily, but not lost forever.  A :class:`FaultPlan` encodes what a
simulation is allowed to do:

* :class:`LinkFaults` — loss and duplication probabilities per link.
  Loss is only legal on links touching a declared-byzantine server; the
  constructor enforces this so no test can accidentally violate
  Assumption 1 and then "disprove" a liveness lemma.
* :class:`HealingPartition` — a partition between two server groups over
  a time window; messages crossing the cut during the window are queued
  and released at heal time (delayed, not dropped — Assumption 1 again).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.types import ServerId


@dataclass(frozen=True)
class Disposition:
    """What the fault layer decided for one message: drop it, deliver
    ``copies`` times, with ``extra_delay`` added to the latency sample."""

    drop: bool = False
    copies: int = 1
    extra_delay: float = 0.0


@dataclass
class HealingPartition:
    """A partition separating ``group_a`` from ``group_b`` during
    ``[start, heal)``.  Cross-cut messages sent in the window are
    delivered no earlier than ``heal``."""

    group_a: frozenset[ServerId]
    group_b: frozenset[ServerId]
    start: float
    heal: float

    def __post_init__(self) -> None:
        if self.heal <= self.start:
            raise ValueError("partition must heal strictly after it starts")
        if self.group_a & self.group_b:
            raise ValueError("partition groups must be disjoint")

    def crosses(self, src: ServerId, dst: ServerId) -> bool:
        """Whether the link ``src → dst`` crosses the cut."""
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass
class LinkFaults:
    """Per-link loss/duplication probabilities.

    ``loss`` entries are validated against ``byzantine``: dropping
    traffic of a correct↔correct link would break Assumption 1, so it
    is rejected at construction time.
    """

    byzantine: frozenset[ServerId] = frozenset()
    loss: dict[tuple[ServerId, ServerId], float] = field(default_factory=dict)
    duplication: dict[tuple[ServerId, ServerId], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for (src, dst), probability in self.loss.items():
            if not 0 <= probability <= 1:
                raise ValueError(f"loss probability out of range: {probability}")
            if probability > 0 and src not in self.byzantine and dst not in self.byzantine:
                raise ValueError(
                    f"loss on correct link {src}→{dst} violates Assumption 1; "
                    f"declare one endpoint byzantine"
                )
        for _, probability in self.duplication.items():
            if not 0 <= probability <= 1:
                raise ValueError(f"duplication probability out of range: {probability}")


class FaultPlan:
    """The complete fault schedule of one simulation run."""

    def __init__(
        self,
        link_faults: LinkFaults | None = None,
        partitions: Sequence[HealingPartition] = (),
    ) -> None:
        self.link_faults = link_faults if link_faults is not None else LinkFaults()
        self.partitions = list(partitions)

    @classmethod
    def none(cls) -> "FaultPlan":
        """A fault-free plan."""
        return cls()

    @classmethod
    def lossy_byzantine(
        cls,
        byzantine: Iterable[ServerId],
        peers: Iterable[ServerId],
        probability: float,
    ) -> "FaultPlan":
        """Loss in both directions on every byzantine↔peer link."""
        byz = frozenset(byzantine)
        loss: dict[tuple[ServerId, ServerId], float] = {}
        for bad in byz:
            for peer in peers:
                if peer == bad:
                    continue
                loss[(bad, peer)] = probability
                loss[(peer, bad)] = probability
        return cls(LinkFaults(byzantine=byz, loss=loss))

    def disposition(
        self,
        src: ServerId,
        dst: ServerId,
        now: float,
        rng: random.Random,
    ) -> Disposition:
        """Decide drop/duplicate/extra-delay for one message."""
        faults = self.link_faults
        loss_p = faults.loss.get((src, dst), 0.0)
        if loss_p > 0 and rng.random() < loss_p:
            return Disposition(drop=True)
        copies = 1
        dup_p = faults.duplication.get((src, dst), 0.0)
        while dup_p > 0 and rng.random() < dup_p and copies < 4:
            copies += 1
        extra = 0.0
        for partition in self.partitions:
            if partition.start <= now < partition.heal and partition.crosses(src, dst):
                extra = max(extra, partition.heal - now)
        return Disposition(copies=copies, extra_delay=extra)
