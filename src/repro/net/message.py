"""Wire envelopes — the block DAG's two network message types.

The paper stresses that gossip has "one core message type, namely a
block" (§3) plus the FWD request of Algorithm 1 lines 10–13.  These
envelopes are what the simulated network carries; the higher-level
protocol ``P``'s messages never appear on the wire — that is the whole
point of the embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.block import Block
from repro.types import BlockRef


@dataclass(frozen=True)
class Envelope:
    """Base class of wire messages."""

    def wire_size(self) -> int:
        """Approximate serialized size in bytes, for the metrics layer."""
        raise NotImplementedError


@dataclass(frozen=True)
class BlockEnvelope(Envelope):
    """A full block in flight (Algorithm 1 lines 13 and 17)."""

    block: Block

    def wire_size(self) -> int:
        return self.block.wire_size()


@dataclass(frozen=True)
class FwdRequestEnvelope(Envelope):
    """``FWD ref(B)`` — request to forward a missing predecessor
    (Algorithm 1 line 11)."""

    ref: BlockRef

    def wire_size(self) -> int:
        return 32  # one hash reference
