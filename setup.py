"""Packaging for the ``repro`` distribution.

The runtime environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs are unavailable; this classic setup script
keeps ``pip install -e .`` working.  The library itself has no
third-party runtime dependencies — ``pytest`` and ``hypothesis`` are
needed only for the test suite (the ``test`` extra).
"""

from pathlib import Path

from setuptools import find_packages, setup

_here = Path(__file__).parent
_readme = _here / "README.md"

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Embedding a deterministic BFT protocol in a block DAG "
        "(Schett & Danezis, PODC 2021) — full reproduction with durable "
        "storage and crash recovery"
    ),
    long_description=_readme.read_text(encoding="utf-8") if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={
        "test": ["pytest", "hypothesis"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: System :: Distributed Computing",
    ],
    keywords="bft consensus block-dag byzantine broadcast reproduction",
    zip_safe=False,
)
