"""Legacy setup shim.

The runtime environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs are unavailable; this file enables the classic
``pip install -e .`` path.  Metadata mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Embedding a deterministic BFT protocol in a block DAG "
        "(Schett & Danezis, PODC 2021) — full reproduction"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
